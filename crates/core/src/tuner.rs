//! Online re-characterization: a seeded, deterministic contextual
//! bandit refining knob choices per situation at runtime.
//!
//! The design-time characterization (Sec. III-B → Table III) freezes
//! the best tuning per situation under the hardware model it swept.
//! Under distribution shift — a sensor whose noise floor drifted from
//! the characterized model — that static optimum can be stale.
//! "Accuracy Prevents Robustness in Perception-based Control" argues
//! the point directly: a knob table tuned to one operating point is
//! fragile exactly where robustness matters.
//!
//! [`KnobTuner`] treats the characterized [`KnobStore`] as a
//! *warm-start prior* and refines it online with an epsilon-greedy
//! bandit over the layout-compatible candidate set
//! ([`crate::knobs::candidate_tunings`] — the same arms the batch sweep
//! evaluated). The reward stream is the measured closed-loop error
//! proxy (mean |y_L| of the perception output, with a penalty per
//! missed detection) accumulated over fixed-length decision windows;
//! ground truth is never consulted. Everything is deterministic: the
//! exploration stream is a splitmix64 chain keyed on the tuner seed and
//! the decision index, so a fixed seed reproduces the decision sequence
//! bit-for-bit at any thread count (the HiL loop is sequential; tile
//! threads never touch tuner state).
//!
//! The fallback state machine defers to the degradation policy: the
//! moment the loop enters safe mode the tuner abandons its window,
//! returns the characterized prior, and stops learning until the
//! policy recovers — measurements taken blind are not rewards.
//!
//! With `epsilon == 0.0` the tuner is *exploration-disabled*: it
//! returns the prior on every cycle and never updates an arm, so the
//! loop is behaviorally byte-identical to the static-table loop (the
//! CI gate `gate-tuner-equivalence` holds it to that).

use crate::characterize::{splitmix64, KnobStore};
use crate::knobs::{KnobTable, KnobTuning};
use lkas_scene::situation::SituationFeatures;

/// Configuration of the online knob tuner.
///
/// Construct with [`TunerConfig::new`] plus the `with_*` builders; the
/// struct is `#[non_exhaustive]`, so downstream crates go through the
/// builder surface (individual fields stay readable).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TunerConfig {
    /// Exploration rate in `[0, 1]`. `0.0` disables the bandit
    /// entirely: the tuner returns the characterized prior on every
    /// cycle and records nothing.
    pub epsilon: f64,
    /// Seed of the deterministic exploration stream.
    pub seed: u64,
    /// Cycles of reward accumulation per decision window. Each window
    /// commits one reward sample to one arm.
    pub window_cycles: u32,
    /// Cost charged per missed perception sample (m) — a miss is worse
    /// than any plausible lateral error, but bounded so one unlucky
    /// window does not permanently bury an arm.
    pub miss_penalty_m: f64,
    /// Relative hysteresis of the greedy pick: the incumbent arm is
    /// kept unless a challenger's estimated cost beats it by more than
    /// this margin. Every knob switch costs a reconfiguration
    /// transient (ISP staging, controller handover), so near-ties must
    /// not cause thrash.
    pub switch_margin: f64,
    /// Early-abort threshold: a window whose running cost exceeds this
    /// multiple of the best known arm cost is cut short, limiting how
    /// long the loop drives on an arm that is measurably failing.
    pub abort_factor: f64,
    /// The warm-start prior. `None` wraps the loop's own `KnobTable`
    /// as a bare (sweep-less) store.
    pub store: Option<KnobStore>,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            epsilon: 0.1,
            seed: 7,
            window_cycles: 20,
            miss_penalty_m: 0.25,
            switch_margin: 0.1,
            abort_factor: 2.5,
            store: None,
        }
    }
}

impl TunerConfig {
    /// The default tuner configuration (equivalent to `default()`).
    pub fn new() -> Self {
        TunerConfig::default()
    }

    /// Replaces the exploration rate (builder style), clamped to
    /// `[0, 1]`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon.clamp(0.0, 1.0);
        self
    }

    /// Replaces the exploration-stream seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the decision-window length (builder style). Clamped to
    /// at least 1 cycle.
    pub fn with_window_cycles(mut self, window_cycles: u32) -> Self {
        self.window_cycles = window_cycles.max(1);
        self
    }

    /// Replaces the per-miss penalty (builder style).
    pub fn with_miss_penalty(mut self, miss_penalty_m: f64) -> Self {
        self.miss_penalty_m = miss_penalty_m;
        self
    }

    /// Replaces the greedy switch hysteresis (builder style).
    pub fn with_switch_margin(mut self, switch_margin: f64) -> Self {
        self.switch_margin = switch_margin.max(0.0);
        self
    }

    /// Replaces the early-abort factor (builder style). Clamped to at
    /// least 1.
    pub fn with_abort_factor(mut self, abort_factor: f64) -> Self {
        self.abort_factor = abort_factor.max(1.0);
        self
    }

    /// Supplies the characterized warm-start prior (builder style).
    pub fn with_store(mut self, store: KnobStore) -> Self {
        self.store = Some(store);
        self
    }
}

/// What a tuner choice did, beyond returning a tuning. Events fire on
/// transitions (a new decision window, a safe-mode entry), not on every
/// cycle, so the counters stay meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunerEvent {
    /// A new decision window opened. `explored` marks an
    /// unexplored-arm visit or an epsilon-random pick (as opposed to a
    /// greedy exploit of the current best estimate).
    Decision {
        /// Whether the pick was exploratory.
        explored: bool,
    },
    /// The degradation policy entered safe mode: the tuner abandoned
    /// its window and fell back to the characterized prior.
    Fallback,
}

/// A per-cycle tuner choice: the tuning to apply plus the transition
/// event, if this cycle crossed one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerChoice {
    /// The tuning the loop should run.
    pub tuning: KnobTuning,
    /// The transition this choice crossed, if any.
    pub event: Option<TunerEvent>,
}

/// One bandit arm: a candidate tuning with its running cost estimate.
#[derive(Debug, Clone, Copy)]
struct Arm {
    tuning: KnobTuning,
    /// Running mean window cost (m). Warm-started from the
    /// characterized sweep MAE where available.
    mean_cost: f64,
    /// Committed windows (a warm-started prior counts as one).
    pulls: u64,
}

/// Per-situation bandit state: the candidate arms plus the incumbent
/// the sticky-greedy policy currently backs.
#[derive(Debug, Clone)]
struct SituationState {
    arms: Vec<Arm>,
    /// The arm the greedy policy is committed to. Challengers must
    /// beat it by [`TunerConfig::switch_margin`] to take over.
    incumbent: Option<usize>,
}

impl SituationState {
    /// The best evidence-backed cost estimate across the arms, if any
    /// arm has evidence.
    fn best_known_cost(&self) -> Option<f64> {
        self.arms
            .iter()
            .filter(|a| a.pulls > 0)
            .map(|a| a.mean_cost)
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }
}

/// Minimum observations before a window may be cut short: enough to
/// tell a genuinely failing arm from one unlucky sample.
const ABORT_MIN_OBSERVATIONS: u64 = 8;

/// The reward window currently accumulating.
#[derive(Debug, Clone, Copy)]
struct Window {
    situation: SituationFeatures,
    arm: usize,
    sum_abs_m: f64,
    samples: u64,
    misses: u64,
    /// Set when the running cost blew past the early-abort threshold;
    /// the window commits at the next decision point.
    aborted: bool,
}

impl Window {
    fn observations(&self) -> u64 {
        self.samples + self.misses
    }

    fn cost(&self, miss_penalty_m: f64) -> f64 {
        (self.sum_abs_m + miss_penalty_m * self.misses as f64) / self.observations() as f64
    }
}

/// The online re-characterization layer: a deterministic epsilon-greedy
/// bandit over the layout-compatible candidate arms, warm-started from
/// the characterized [`KnobStore`] and updating it in place.
#[derive(Debug, Clone)]
pub struct KnobTuner {
    config: TunerConfig,
    store: KnobStore,
    /// Per-situation arm statistics, created lazily in first-seen
    /// order (the HiL loop is sequential, so this order is
    /// deterministic).
    situations: Vec<(SituationFeatures, SituationState)>,
    window: Option<Window>,
    decisions: u64,
    degraded: bool,
}

impl KnobTuner {
    /// A tuner warm-started from the configured store, or from `table`
    /// wrapped as a bare store when the configuration carries none.
    pub fn new(mut config: TunerConfig, table: &KnobTable) -> Self {
        let store = config.store.take().unwrap_or_else(|| KnobStore::from_table(table.clone()));
        KnobTuner {
            config,
            store,
            situations: Vec::new(),
            window: None,
            decisions: 0,
            degraded: false,
        }
    }

    /// The live store: the prior plus every outcome committed so far.
    pub fn store(&self) -> &KnobStore {
        &self.store
    }

    /// Consumes the tuner, returning the updated store.
    pub fn into_store(self) -> KnobStore {
        self.store
    }

    /// Total decision windows opened.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Chooses the tuning for this cycle.
    ///
    /// `degraded` is the degradation policy's safe-mode state: while
    /// set, the tuner returns the characterized prior (abandoning any
    /// open window on entry — [`TunerEvent::Fallback`]) and pauses
    /// learning. With `epsilon == 0.0` the tuner always returns the
    /// prior and never opens a window.
    pub fn select(&mut self, situation: &SituationFeatures, degraded: bool) -> TunerChoice {
        if degraded {
            let entered = !self.degraded;
            self.degraded = true;
            self.window = None;
            return TunerChoice {
                tuning: self.store.prior(situation),
                event: entered.then_some(TunerEvent::Fallback),
            };
        }
        let recovering = std::mem::replace(&mut self.degraded, false);
        if recovering {
            self.window = None;
        }

        if self.config.epsilon == 0.0 {
            // Exploration disabled: pure prior, byte-identical to the
            // static-table loop.
            return TunerChoice { tuning: self.store.prior(situation), event: None };
        }

        // An open window for this situation keeps its arm until it has
        // seen a full window of observations or aborted early.
        if let Some(window) = self.window {
            if window.situation == *situation
                && window.observations() < u64::from(self.config.window_cycles)
                && !window.aborted
            {
                let si = self.situation_index(situation);
                let tuning = self.situations[si].1.arms[window.arm].tuning;
                return TunerChoice { tuning, event: None };
            }
            self.commit(window);
        }

        // Open a new window: unexplored arms first (canonical order),
        // then a seeded epsilon probe, otherwise sticky-greedy — the
        // incumbent keeps its seat unless a challenger beats it by the
        // switch margin (every switch costs a reconfiguration
        // transient, so near-ties must not thrash).
        let si = self.situation_index(situation);
        let state = &self.situations[si].1;
        let (arm, explored) = match state.arms.iter().position(|a| a.pulls == 0) {
            Some(unexplored) => (unexplored, true),
            None => {
                let draw = self.draw();
                if ((draw >> 11) as f64) / ((1u64 << 53) as f64) < self.config.epsilon {
                    (splitmix64(draw) as usize % state.arms.len(), true)
                } else {
                    let challenger = state
                        .arms
                        .iter()
                        .enumerate()
                        .min_by(|a, b| {
                            a.1.mean_cost
                                .partial_cmp(&b.1.mean_cost)
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .map(|(i, _)| i)
                        .expect("candidate arms are never empty");
                    let seat = match state.incumbent {
                        Some(incumbent)
                            if state.arms[incumbent].pulls > 0
                                && state.arms[incumbent].mean_cost
                                    <= state.arms[challenger].mean_cost
                                        * (1.0 + self.config.switch_margin) =>
                        {
                            incumbent
                        }
                        _ => challenger,
                    };
                    self.situations[si].1.incumbent = Some(seat);
                    (seat, false)
                }
            }
        };
        self.decisions += 1;
        self.window = Some(Window {
            situation: *situation,
            arm,
            sum_abs_m: 0.0,
            samples: 0,
            misses: 0,
            aborted: false,
        });
        TunerChoice {
            tuning: self.situations[si].1.arms[arm].tuning,
            event: Some(TunerEvent::Decision { explored }),
        }
    }

    /// Feeds one cycle's perception output (the raw `y_L`, before any
    /// degradation hold) into the open reward window. Ignored while
    /// degraded, while exploration is disabled, or when no window is
    /// open.
    pub fn record(&mut self, raw_y_l: Option<f64>) {
        if self.degraded || self.config.epsilon == 0.0 {
            return;
        }
        let Some(mut window) = self.window else { return };
        match raw_y_l {
            Some(y_l) => {
                window.sum_abs_m += y_l.abs();
                window.samples += 1;
            }
            None => window.misses += 1,
        }
        // Early abort: once the running cost measurably exceeds the
        // best known arm, stop feeding cycles to a failing arm — the
        // window commits (with its damning evidence) at the next
        // decision point.
        if !window.aborted && window.observations() >= ABORT_MIN_OBSERVATIONS {
            let si = self.situation_index(&window.situation);
            if let Some(best) = self.situations[si].1.best_known_cost() {
                if window.cost(self.config.miss_penalty_m) > self.config.abort_factor * best {
                    window.aborted = true;
                }
            }
        }
        self.window = Some(window);
    }

    /// Feeds one cycle's telemetry-stream event into the open reward
    /// window. The stream carries the identical raw `y_L` the in-loop
    /// path used to hand to [`KnobTuner::record`] directly, so a
    /// stream-fed tuner is behaviorally identical to the in-loop one
    /// (the CI `gate-stream-equivalence` stage `cmp`s the two at
    /// `epsilon = 0`).
    pub fn record_delta(&mut self, delta: &lkas_runtime::CycleDelta) {
        self.record(delta.y_l_measured);
    }

    /// Commits any open window. Call at end of run so the last
    /// window's evidence is not dropped on the floor.
    pub fn flush(&mut self) {
        if let Some(window) = self.window.take() {
            self.commit(window);
        }
    }

    /// Folds a finished window's cost into its arm and the live store.
    fn commit(&mut self, window: Window) {
        if window.observations() == 0 {
            return;
        }
        let cost = window.cost(self.config.miss_penalty_m);
        let si = self.situation_index(&window.situation);
        let arm = &mut self.situations[si].1.arms[window.arm];
        arm.mean_cost = (arm.mean_cost * arm.pulls as f64 + cost) / (arm.pulls as f64 + 1.0);
        arm.pulls += 1;
        let (tuning, mean) = (arm.tuning, arm.mean_cost);
        self.store.record_outcome(&window.situation, tuning, Some(mean));
    }

    /// The index of a situation's arm set, creating it (warm-started
    /// from the store's sweep MAEs, with the characterized prior as
    /// the initial incumbent) on first sight.
    fn situation_index(&mut self, situation: &SituationFeatures) -> usize {
        if let Some(i) = self.situations.iter().position(|(s, _)| s == situation) {
            return i;
        }
        let arms: Vec<Arm> = self
            .store
            .candidates(situation)
            .into_iter()
            .map(|tuning| match self.store.prior_mae(situation, &tuning) {
                Some(mae) => Arm { tuning, mean_cost: mae, pulls: 1 },
                // The mean of a pull-less arm is never consulted:
                // unexplored arms are visited before any greedy pick.
                None => Arm { tuning, mean_cost: 0.0, pulls: 0 },
            })
            .collect();
        let prior = self.store.prior(situation);
        let incumbent = arms.iter().position(|a| a.tuning == prior);
        self.situations.push((*situation, SituationState { arms, incumbent }));
        self.situations.len() - 1
    }

    /// The next word of the deterministic exploration stream: a
    /// splitmix64 chain keyed on the seed and the decision index.
    fn draw(&self) -> u64 {
        splitmix64(splitmix64(self.config.seed) ^ self.decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{CharacterizeConfig, Characterizer};
    use lkas_scene::situation::TABLE3_SITUATIONS;

    fn paper_store() -> KnobStore {
        KnobStore::from_table(KnobTable::paper_table3())
    }

    fn decision_trace(seed: u64, epsilon: f64, rewards: &[f64]) -> Vec<KnobTuning> {
        // Drive the tuner with a synthetic deterministic reward stream:
        // each cycle selects, then records a pseudo-measurement derived
        // from the cycle index.
        let config = TunerConfig::new()
            .with_seed(seed)
            .with_epsilon(epsilon)
            .with_window_cycles(3)
            .with_store(paper_store());
        let mut tuner = KnobTuner::new(config, &KnobTable::paper_table3());
        let situation = &TABLE3_SITUATIONS[0];
        let mut trace = Vec::new();
        for (i, reward) in rewards.iter().enumerate() {
            let choice = tuner.select(situation, false);
            trace.push(choice.tuning);
            tuner.record(if i % 7 == 3 { None } else { Some(*reward) });
        }
        tuner.flush();
        trace
    }

    fn synthetic_rewards(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37 + 11) % 100) as f64 / 250.0).collect()
    }

    #[test]
    fn safe_mode_always_returns_the_characterized_prior() {
        let store = paper_store();
        let mut tuner = KnobTuner::new(
            TunerConfig::new().with_store(store.clone()),
            &KnobTable::paper_table3(),
        );
        for situation in TABLE3_SITUATIONS.iter() {
            // Warm the tuner up with some normal decisions first so a
            // non-prior arm may be active.
            for _ in 0..5 {
                let _ = tuner.select(situation, false);
                tuner.record(Some(0.1));
            }
            let entry = tuner.select(situation, true);
            assert_eq!(entry.tuning, store.prior(situation), "{}", situation.describe());
            assert_eq!(entry.event, Some(TunerEvent::Fallback));
            // Entry fires the fallback event once; staying degraded
            // keeps returning the prior silently, and rewards are
            // ignored.
            let held = tuner.select(situation, true);
            assert_eq!(held.tuning, store.prior(situation));
            assert_eq!(held.event, None);
            tuner.record(Some(99.0));
            let _ = tuner.select(situation, false); // recover for next iteration
        }
    }

    #[test]
    fn epsilon_zero_is_pure_prior() {
        let store = paper_store();
        let version = store.version();
        let mut tuner = KnobTuner::new(
            TunerConfig::new().with_epsilon(0.0).with_store(store.clone()),
            &KnobTable::paper_table3(),
        );
        for situation in TABLE3_SITUATIONS.iter() {
            for _ in 0..50 {
                let choice = tuner.select(situation, false);
                assert_eq!(choice.tuning, store.prior(situation));
                assert_eq!(choice.event, None);
                tuner.record(Some(0.5));
            }
        }
        tuner.flush();
        assert_eq!(tuner.decisions(), 0);
        assert_eq!(tuner.store().version(), version, "no learning with exploration disabled");
    }

    #[test]
    fn unexplored_arms_are_visited_first_in_canonical_order() {
        let mut tuner = KnobTuner::new(
            TunerConfig::new().with_window_cycles(1).with_store(paper_store()),
            &KnobTable::paper_table3(),
        );
        let situation = &TABLE3_SITUATIONS[0];
        let candidates = tuner.store().candidates(situation);
        // A bare-table store has no sweep MAEs, so every arm starts
        // unexplored; the first |arms| windows must sweep them in
        // candidate order.
        for expected in candidates {
            let choice = tuner.select(situation, false);
            assert_eq!(choice.tuning, expected);
            assert_eq!(choice.event, Some(TunerEvent::Decision { explored: true }));
            tuner.record(Some(0.1));
        }
    }

    #[test]
    fn warm_start_exploits_the_characterized_prior_first() {
        // A store with sweep data marks every arm explored, so the
        // first greedy decision exploits the best characterized arm.
        let characterizer =
            Characterizer::new(CharacterizeConfig::new().with_track_length(90.0).with_threads(2));
        let store = characterizer.characterize_store(&TABLE3_SITUATIONS[0..1]);
        let prior = store.prior(&TABLE3_SITUATIONS[0]);
        let mut tuner = KnobTuner::new(
            TunerConfig::new().with_epsilon(0.05).with_store(store),
            &KnobTable::paper_table3(),
        );
        let choice = tuner.select(&TABLE3_SITUATIONS[0], false);
        assert_eq!(choice.tuning, prior);
        assert_eq!(choice.event, Some(TunerEvent::Decision { explored: false }));
    }

    #[test]
    fn learning_shifts_the_greedy_choice() {
        // Hammer the prior arm with terrible measured rewards; once
        // every arm has evidence, the greedy pick must leave the prior.
        let mut tuner = KnobTuner::new(
            TunerConfig::new().with_window_cycles(2).with_epsilon(0.01).with_store(paper_store()),
            &KnobTable::paper_table3(),
        );
        let situation = &TABLE3_SITUATIONS[0];
        let prior = tuner.store().prior(situation);
        let before = tuner.store().version();
        for _ in 0..200 {
            let choice = tuner.select(situation, false);
            // Good rewards everywhere except the prior arm.
            let cost = if choice.tuning == prior { 2.0 } else { 0.05 };
            tuner.record(Some(cost));
        }
        tuner.flush();
        let final_choice = tuner.select(situation, false).tuning;
        assert_ne!(final_choice, prior, "bandit must abandon a measurably bad prior");
        assert!(tuner.store().version() > before, "committed windows bump the store version");
        assert!(tuner.store().prior_mae(situation, &prior).expect("prior has evidence") > 1.0);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn decision_sequence_is_deterministic_for_a_fixed_seed(
            seed in 0u64..1_000_000,
            epsilon_milli in 0u64..1001,
        ) {
            let epsilon = epsilon_milli as f64 / 1000.0;
            let rewards = synthetic_rewards(120);
            let a = decision_trace(seed, epsilon, &rewards);
            let b = decision_trace(seed, epsilon, &rewards);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn different_seeds_are_reproducibly_different_streams(seed in 1u64..1_000_000) {
            // Not an inequality guarantee per se (two seeds *can*
            // agree), but each stream must at least be self-consistent
            // under replay after interleaving other tuner instances.
            let rewards = synthetic_rewards(60);
            let reference = decision_trace(seed, 0.5, &rewards);
            let _ = decision_trace(seed.wrapping_add(1), 0.5, &rewards);
            let replay = decision_trace(seed, 0.5, &rewards);
            prop_assert_eq!(reference, replay);
        }
    }
}
