//! Design-time hardware- and situation-aware characterization
//! (Sec. III-B → Table III).
//!
//! For each situation, every candidate knob tuning (ISP configuration ×
//! layout-compatible ROI × speed) is evaluated in a closed-loop HiL
//! simulation and the tuning with the best QoC (lowest MAE) is
//! recorded. Candidates that crash are disqualified. The sweep runs
//! through the [`lkas_runtime::campaign`] engine: the candidate grid is
//! canonical (same order on every run), so it can be split into
//! `--shard i/N` slices, checkpointed and resumed, and merged back into
//! a [`Characterization`] byte-identical to the single-process sweep at
//! any shard and thread count.

use crate::cases::Case;
use crate::hil::{HilConfig, HilResult, HilSimulator, SituationSource};
use crate::knobs::{candidate_tunings, KnobTable, KnobTuning};
use lkas_runtime::{
    run_campaign, CampaignRun, CampaignSpec, Fingerprint, MergedShards, Metrics, Shard,
};
use lkas_scene::camera::Camera;
use lkas_scene::situation::SituationFeatures;
use lkas_scene::track::Track;
use serde::{Deserialize, Serialize, Value};
use std::path::PathBuf;

/// Configuration of a characterization sweep.
#[derive(Debug, Clone)]
pub struct CharacterizeConfig {
    /// Track length per evaluation run (m). Longer runs average more
    /// noise but cost proportionally more.
    pub track_length_m: f64,
    /// Camera used for the runs (a half-resolution camera keeps the
    /// sweep fast without changing the knob ordering).
    pub camera: Camera,
    /// Sensor seed base; each candidate gets a distinct derived seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for CharacterizeConfig {
    fn default() -> Self {
        CharacterizeConfig {
            track_length_m: 220.0,
            camera: Camera::new(256, 128, 150.0, 1.3, 6.0_f64.to_radians()),
            seed: 7,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        }
    }
}

/// Result of evaluating one candidate tuning for one situation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateOutcome {
    /// The candidate knob tuning.
    pub tuning: KnobTuning,
    /// Measured MAE, or `None` if the run crashed (disqualified).
    pub mae: Option<f64>,
    /// Perception failures during the run (diagnostic).
    pub perception_failures: u64,
}

/// Full characterization output: the best tuning per situation plus the
/// complete candidate sweep for analysis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Best-QoC tuning per situation — the regenerated Table III.
    pub table: KnobTable,
    /// All candidate outcomes per situation, in sweep order.
    pub sweeps: Vec<(SituationFeatures, Vec<CandidateOutcome>)>,
}

impl Characterization {
    /// The measured MAE of the winning tuning for a situation.
    pub fn best_mae(&self, situation: &SituationFeatures) -> Option<f64> {
        let best = self.table.get(situation)?;
        self.sweeps.iter().find(|(s, _)| s == situation)?.1.iter().find(|c| c.tuning == best)?.mae
    }
}

/// Evaluates one candidate tuning for one situation: a Case-4-shaped
/// closed loop with the oracle situation source and a single-entry knob
/// table pinning the candidate.
pub fn evaluate_candidate(
    situation: &SituationFeatures,
    tuning: KnobTuning,
    config: &CharacterizeConfig,
    seed: u64,
) -> HilResult {
    let mut table = KnobTable::new();
    table.insert(*situation, tuning);
    let track = Track::for_situation(situation, config.track_length_m);
    // Start with the correct estimate: the designer knows the situation
    // at characterization time (Sec. III-B).
    let hil = HilConfig::new(Case::Case4, SituationSource::Oracle)
        .with_knob_table(table)
        .with_camera(config.camera.clone())
        .with_seed(seed)
        .with_initial_estimate(*situation);
    HilSimulator::new(track, hil).run()
}

/// The per-candidate sensor seed: the base seed, situation index, and
/// every tuning field mixed through chained splitmix64 finalizers.
///
/// The previous derivation (`base * φ + si*1000 + isp*97 + roi*13 +
/// speed`) was a linear combination, so distinct `(situation, tuning)`
/// pairs could collide (e.g. any `Δsi·1000 = Δisp·97 + Δroi·13 + Δv`
/// solution); the avalanche rounds make that practically impossible.
pub fn candidate_seed(base: u64, situation_index: usize, tuning: &KnobTuning) -> u64 {
    let mut state = splitmix64(base);
    for word in
        [situation_index as u64, tuning.isp as u64, tuning.roi as u64, tuning.speed_kmph.to_bits()]
    {
        state = splitmix64(state ^ word);
    }
    state
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The stable content fingerprint of a characterization configuration:
/// everything that determines evaluation outcomes (track length, camera
/// model, seed base) and nothing that does not (`threads`). Embedded in
/// candidate keys and shard artifacts so checkpoints and merges can
/// only combine evaluations of the same configuration.
pub fn config_fingerprint(config: &CharacterizeConfig) -> String {
    Fingerprint::new()
        .push_str("characterize")
        .push_f64(config.track_length_m)
        .push_u64(config.camera.width() as u64)
        .push_u64(config.camera.height() as u64)
        .push_f64(config.camera.focal())
        .push_f64(config.camera.mount_height())
        .push_f64(config.camera.pitch())
        .push_u64(config.seed)
        .finish()
}

/// The content key of one candidate evaluation: situation, tuning,
/// derived sensor seed, and the configuration fingerprint. Two grids
/// that share a key share the evaluation — the basis of the
/// checkpoint's content-keyed cache.
pub fn candidate_key(
    situation_index: usize,
    situation: &SituationFeatures,
    tuning: &KnobTuning,
    seed: u64,
    config_hash: &str,
) -> String {
    format!(
        "s{situation_index:02}|{}|isp={}|roi={}|v={:.0}|seed={seed:016x}|cfg={config_hash}",
        situation.describe(),
        tuning.isp.name(),
        tuning.roi.name(),
        tuning.speed_kmph
    )
}

/// The canonical characterization grid: `(content key, (situation
/// index, candidate))` in sweep order. Every shard of every run
/// regenerates this identical list — the deterministic partitioner
/// slices it, and the merge reassembles along it.
pub fn characterize_grid(
    situations: &[SituationFeatures],
    config: &CharacterizeConfig,
) -> Vec<(String, (usize, KnobTuning))> {
    let config_hash = config_fingerprint(config);
    let mut grid = Vec::new();
    for (si, situation) in situations.iter().enumerate() {
        for tuning in candidate_tunings(situation) {
            let seed = candidate_seed(config.seed, si, &tuning);
            grid.push((candidate_key(si, situation, &tuning, seed, &config_hash), (si, tuning)));
        }
    }
    grid
}

/// Builds the [`CampaignSpec`] for a characterization run: the campaign
/// identity and parameters that shard artifacts record and the merge
/// driver reads back.
pub fn campaign_spec(
    config: &CharacterizeConfig,
    shard: Shard,
    checkpoint: Option<PathBuf>,
    resume: bool,
) -> CampaignSpec {
    CampaignSpec {
        name: "table3_characterization".to_string(),
        params: Value::Object(vec![
            ("track_length_m".to_string(), Value::F64(config.track_length_m)),
            ("seed".to_string(), Value::U64(config.seed)),
        ]),
        config_hash: config_fingerprint(config),
        threads: config.threads,
        shard,
        checkpoint,
        resume,
    }
}

/// Reconstructs the sweep configuration from a shard artifact's
/// `params` blob (the camera is the characterization default; the
/// recorded `config_hash` cross-checks the reconstruction).
///
/// # Errors
///
/// Returns a message when a parameter is missing or mistyped.
pub fn config_from_params(params: &Value) -> Result<CharacterizeConfig, String> {
    let Value::Object(fields) = params else {
        return Err("characterization params are not an object".to_string());
    };
    let field = |name: &str| {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("characterization params lack `{name}`"))
    };
    let track_length_m =
        field("track_length_m")?.as_f64().ok_or("`track_length_m` is not a number")?;
    let seed = field("seed")?.as_u64().ok_or("`seed` is not an integer")?;
    Ok(CharacterizeConfig { track_length_m, seed, ..CharacterizeConfig::default() })
}

/// Runs one shard of the characterization campaign: restores
/// checkpointed candidates, evaluates the rest, and returns the shard's
/// outcomes in canonical grid order.
pub fn characterize_campaign(
    situations: &[SituationFeatures],
    config: &CharacterizeConfig,
    spec: &CampaignSpec,
    metrics: Option<&Metrics>,
) -> CampaignRun<CandidateOutcome> {
    let grid = characterize_grid(situations, config);
    run_campaign(
        spec,
        grid,
        metrics,
        || (),
        |_key, (si, tuning), _state: &mut ()| {
            let seed = candidate_seed(config.seed, si, &tuning);
            let result = evaluate_candidate(&situations[si], tuning, config, seed);
            CandidateOutcome {
                tuning,
                mae: if result.crashed { None } else { result.overall_mae() },
                perception_failures: result.perception_failures,
            }
        },
        |()| {},
    )
}

/// Collates full-grid outcomes (in canonical grid order) into the
/// regenerated Table III. Outcome order is deterministic, so the
/// sweeps — and the winner on MAE ties — are identical for any thread
/// or shard count.
pub fn assemble_characterization(
    situations: &[SituationFeatures],
    outcomes: impl IntoIterator<Item = (usize, CandidateOutcome)>,
) -> Characterization {
    let mut sweeps: Vec<(SituationFeatures, Vec<CandidateOutcome>)> =
        situations.iter().map(|s| (*s, Vec::new())).collect();
    for (si, outcome) in outcomes {
        sweeps[si].1.push(outcome);
    }
    let mut table = KnobTable::new();
    for (situation, outcomes) in &sweeps {
        let best = outcomes
            .iter()
            .filter_map(|c| c.mae.map(|m| (c.tuning, m)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some((tuning, _)) = best {
            table.insert(*situation, tuning);
        }
    }
    Characterization { table, sweeps }
}

/// Reassembles a full [`Characterization`] from merged shard
/// artifacts: walks the canonical grid, takes each entry out of the
/// merged set, and collates — byte-identical to the single-process
/// sweep.
///
/// # Errors
///
/// Returns a message when the merged set does not cover the grid or an
/// entry does not deserialize.
pub fn characterization_from_merged(
    situations: &[SituationFeatures],
    config: &CharacterizeConfig,
    merged: &mut MergedShards,
) -> Result<Characterization, String> {
    let expected = config_fingerprint(config);
    if merged.config_hash != expected {
        return Err(format!(
            "merged shards fingerprint {} does not match configuration {expected}",
            merged.config_hash
        ));
    }
    let mut outcomes = Vec::new();
    for (key, (si, _)) in characterize_grid(situations, config) {
        outcomes.push((si, merged.take::<CandidateOutcome>(&key)?));
    }
    Ok(assemble_characterization(situations, outcomes))
}

/// Characterizes the given situations, returning the regenerated
/// Table III and the full sweep data — the single-process path: the
/// full grid through the campaign engine with no checkpoint.
pub fn characterize(
    situations: &[SituationFeatures],
    config: &CharacterizeConfig,
) -> Characterization {
    let spec = campaign_spec(config, Shard::full(), None, false);
    let run = characterize_campaign(situations, config, &spec, None);
    let indices: Vec<usize> =
        characterize_grid(situations, config).into_iter().map(|(_, (si, _))| si).collect();
    assemble_characterization(
        situations,
        indices.into_iter().zip(run.entries.into_iter().map(|(_, outcome)| outcome)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkas_imaging::isp::IspConfig;
    use lkas_scene::situation::TABLE3_SITUATIONS;

    fn tiny_config() -> CharacterizeConfig {
        CharacterizeConfig { track_length_m: 90.0, threads: 4, ..CharacterizeConfig::default() }
    }

    #[test]
    fn evaluate_candidate_runs() {
        let cfg = tiny_config();
        let r = evaluate_candidate(&TABLE3_SITUATIONS[0], KnobTuning::conservative(), &cfg, 1);
        assert!(!r.crashed);
        assert!(r.overall_mae().is_some());
    }

    #[test]
    fn characterize_picks_a_noncrashing_winner() {
        // Sweep only a restricted candidate set via a single situation;
        // the winner must be a real (non-crashed) tuning.
        let cfg = tiny_config();
        let out = characterize(&TABLE3_SITUATIONS[0..1], &cfg);
        assert_eq!(out.table.len(), 1);
        assert_eq!(out.sweeps.len(), 1);
        assert_eq!(out.sweeps[0].1.len(), 9, "9 ISP candidates on straights");
        let best = out.table.get(&TABLE3_SITUATIONS[0]).unwrap();
        assert!(out.best_mae(&TABLE3_SITUATIONS[0]).is_some());
        // The winner should not be slower than the exact pipeline: the
        // whole point of the approximation is a shorter τ (S0's τ of
        // 23+16.5+... forces h = 45 with three classifiers, while
        // S3–S8 reach h = 25).
        assert_ne!(best.isp, IspConfig::S0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = tiny_config();
        let a = characterize(&TABLE3_SITUATIONS[0..1], &cfg);
        let b = characterize(&TABLE3_SITUATIONS[0..1], &cfg);
        assert_eq!(a.table.get(&TABLE3_SITUATIONS[0]), b.table.get(&TABLE3_SITUATIONS[0]));
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        // The executor returns results in job order, so the entire
        // characterization — winners *and* sweep data — must match
        // between a serial and a parallel run.
        let serial_cfg = CharacterizeConfig { threads: 1, ..tiny_config() };
        let parallel_cfg = CharacterizeConfig { threads: 4, ..tiny_config() };
        let serial = characterize(&TABLE3_SITUATIONS[0..1], &serial_cfg);
        let parallel = characterize(&TABLE3_SITUATIONS[0..1], &parallel_cfg);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sharded_sweep_merges_byte_identically_with_the_single_process_run() {
        use lkas_runtime::{merge_shard_files, read_shard_file, write_shard_file};
        let cfg = tiny_config();
        let situations = &TABLE3_SITUATIONS[0..1];
        let reference = characterize(situations, &cfg);
        let dir = std::env::temp_dir().join(format!("lkas-char-shards-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Two shards at different thread counts — neither may matter.
        let files: Vec<_> = (0..2)
            .map(|index| {
                let shard_cfg = CharacterizeConfig { threads: 1 + index, ..cfg.clone() };
                let spec = campaign_spec(&shard_cfg, Shard { index, count: 2 }, None, false);
                let run = characterize_campaign(situations, &shard_cfg, &spec, None);
                let path = dir.join(format!("shard{index}.json"));
                write_shard_file(&path, &spec, &run, None);
                read_shard_file(&path).unwrap()
            })
            .collect();
        let mut merged = merge_shard_files(files).unwrap();
        let assembled = characterization_from_merged(situations, &cfg, &mut merged).unwrap();
        assert_eq!(
            serde_json::to_string_pretty(&serde_json::to_value(&assembled)),
            serde_json::to_string_pretty(&serde_json::to_value(&reference)),
            "merged shards must reproduce the single-process sweep byte-for-byte"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_sweep_resumes_from_checkpoint() {
        use lkas_runtime::{Counter, Metrics};
        let cfg = CharacterizeConfig { threads: 2, ..tiny_config() };
        let situations = &TABLE3_SITUATIONS[0..1];
        let dir = std::env::temp_dir().join(format!("lkas-char-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let checkpoint = dir.join("checkpoint.jsonl");

        // A full run checkpoints all 9 candidates.
        let spec = campaign_spec(&cfg, Shard::full(), Some(checkpoint.clone()), false);
        let full = characterize_campaign(situations, &cfg, &spec, None);
        assert_eq!(full.stats.evaluated, 9);
        let text = std::fs::read_to_string(&checkpoint).unwrap();
        assert_eq!(text.lines().count(), 9);

        // Kill after 4 evaluations (any interrupted run leaves a
        // prefix-complete checkpoint), then resume: telemetry must show
        // exactly 5 fresh evaluations and 4 restores, and the outcomes
        // must be identical.
        let partial: String = text.lines().take(4).map(|l| format!("{l}\n")).collect();
        std::fs::write(&checkpoint, partial).unwrap();
        let spec = campaign_spec(&cfg, Shard::full(), Some(checkpoint), true);
        let metrics = Metrics::new();
        let resumed = characterize_campaign(situations, &cfg, &spec, Some(&metrics));
        assert_eq!(resumed.stats.evaluated, 5);
        assert_eq!(resumed.stats.restored, 4);
        assert_eq!(metrics.counter(Counter::CampaignEvaluations), 5);
        assert_eq!(metrics.counter(Counter::CampaignRestored), 4);
        assert_eq!(resumed.entries, full.entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_params_round_trip() {
        let cfg = tiny_config();
        let spec = campaign_spec(&cfg, Shard::full(), None, false);
        let back = config_from_params(&spec.params).unwrap();
        assert_eq!(back.track_length_m, cfg.track_length_m);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(config_fingerprint(&back), spec.config_hash);
        assert!(config_from_params(&Value::Null).is_err());
    }

    #[test]
    fn candidate_seeds_do_not_collide() {
        // Every (situation, candidate) pair across the full Table III
        // grid must map to a distinct sensor seed.
        let mut seeds = std::collections::HashSet::new();
        for (si, situation) in TABLE3_SITUATIONS.iter().enumerate() {
            for tuning in candidate_tunings(situation) {
                assert!(
                    seeds.insert(candidate_seed(7, si, &tuning)),
                    "seed collision at situation {si}, tuning {tuning:?}"
                );
            }
        }
        // And the base seed must actually matter.
        assert_ne!(
            candidate_seed(7, 0, &KnobTuning::conservative()),
            candidate_seed(8, 0, &KnobTuning::conservative())
        );
    }
}
