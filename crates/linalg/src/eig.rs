//! Eigenvalues of small real matrices via the shifted QR algorithm.
//!
//! The workspace uses eigenvalues for closed-loop stability analysis
//! (spectral radius of discrete-time closed-loop matrices, continuous-time
//! pole checks). Matrices are ≤ 12×12, so a straightforward
//! Hessenberg-plus-shifted-QR implementation with 1×1/2×2 deflation is
//! both fast and accurate enough.

use crate::{Complex, LinalgError, Mat, Result};

/// Maximum QR sweeps per eigenvalue before giving up.
const MAX_SWEEPS_PER_EIG: usize = 120;

/// Reduces a square matrix to upper Hessenberg form via Householder
/// similarity transforms. The eigenvalues are preserved.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidInput`] if `a` is not square.
pub fn hessenberg(a: &Mat) -> Result<Mat> {
    if !a.is_square() {
        return Err(LinalgError::InvalidInput("hessenberg requires a square matrix"));
    }
    let n = a.rows();
    let mut h = a.clone();
    for k in 0..n.saturating_sub(2) {
        // Householder vector annihilating h[k+2.., k].
        let mut alpha = 0.0;
        for i in (k + 1)..n {
            alpha += h[(i, k)] * h[(i, k)];
        }
        alpha = alpha.sqrt();
        if alpha == 0.0 {
            continue;
        }
        if h[(k + 1, k)] > 0.0 {
            alpha = -alpha;
        }
        let mut v = vec![0.0; n];
        v[k + 1] = h[(k + 1, k)] - alpha;
        for i in (k + 2)..n {
            v[i] = h[(i, k)];
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 < 1e-300 {
            continue;
        }
        // H = I - 2 v vᵀ / (vᵀv); apply H·A·H.
        // Left: A -= v (2 vᵀ A / vᵀv)
        for j in 0..n {
            let mut dot = 0.0;
            for i in (k + 1)..n {
                dot += v[i] * h[(i, j)];
            }
            let f = 2.0 * dot / vnorm2;
            for i in (k + 1)..n {
                h[(i, j)] -= f * v[i];
            }
        }
        // Right: A -= (2 A v / vᵀv) vᵀ
        for i in 0..n {
            let mut dot = 0.0;
            for j in (k + 1)..n {
                dot += h[(i, j)] * v[j];
            }
            let f = 2.0 * dot / vnorm2;
            for j in (k + 1)..n {
                h[(i, j)] -= f * v[j];
            }
        }
    }
    Ok(h)
}

/// Eigenvalues of the 2×2 block `[[a, b], [c, d]]`.
fn eig2(a: f64, b: f64, c: f64, d: f64) -> (Complex, Complex) {
    let tr = a + d;
    let det = a * d - b * c;
    let disc = tr * tr / 4.0 - det;
    if disc >= 0.0 {
        let sq = disc.sqrt();
        (Complex::from_real(tr / 2.0 + sq), Complex::from_real(tr / 2.0 - sq))
    } else {
        let sq = (-disc).sqrt();
        (Complex::new(tr / 2.0, sq), Complex::new(tr / 2.0, -sq))
    }
}

/// One explicit shifted QR sweep (Givens based) on the leading `m×m`
/// Hessenberg block of `h`.
fn qr_sweep(h: &mut Mat, m: usize, shift: f64) {
    // H - σI = Q R  (Givens), then H ← R Q + σI.
    let mut cs = vec![(1.0_f64, 0.0_f64); m.saturating_sub(1)];
    for i in 0..m {
        h[(i, i)] -= shift;
    }
    // Forward pass: zero the subdiagonal.
    for k in 0..m - 1 {
        let a = h[(k, k)];
        let b = h[(k + 1, k)];
        let r = a.hypot(b);
        let (c, s) = if r > 0.0 { (a / r, b / r) } else { (1.0, 0.0) };
        cs[k] = (c, s);
        for j in k..m {
            let t1 = h[(k, j)];
            let t2 = h[(k + 1, j)];
            h[(k, j)] = c * t1 + s * t2;
            h[(k + 1, j)] = -s * t1 + c * t2;
        }
    }
    // Backward pass: multiply by the transposed rotations on the right.
    for k in 0..m - 1 {
        let (c, s) = cs[k];
        for i in 0..=(k + 1).min(m - 1) {
            let t1 = h[(i, k)];
            let t2 = h[(i, k + 1)];
            h[(i, k)] = c * t1 + s * t2;
            h[(i, k + 1)] = -s * t1 + c * t2;
        }
    }
    for i in 0..m {
        h[(i, i)] += shift;
    }
}

/// Computes all eigenvalues of a real square matrix.
///
/// Complex eigenvalues come in conjugate pairs. The result is sorted by
/// descending modulus, which is convenient for spectral-radius checks.
///
/// # Errors
///
/// * [`LinalgError::InvalidInput`] if `a` is not square or has non-finite
///   entries.
/// * [`LinalgError::NoConvergence`] if the QR iteration stalls (does not
///   occur for the well-scaled matrices in this workspace).
///
/// # Example
///
/// ```
/// use lkas_linalg::{Mat, eig::eigenvalues};
///
/// let a = Mat::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
/// let e = eigenvalues(&a).unwrap();
/// assert!((e[0].abs() - 1.0).abs() < 1e-10); // eigenvalues ±i
/// assert!(e[0].im.abs() > 0.99);
/// ```
pub fn eigenvalues(a: &Mat) -> Result<Vec<Complex>> {
    if !a.is_square() {
        return Err(LinalgError::InvalidInput("eigenvalues requires a square matrix"));
    }
    if !a.is_finite() {
        return Err(LinalgError::InvalidInput("eigenvalues requires finite entries"));
    }
    let n = a.rows();
    let mut h = hessenberg(a)?;
    let scale = h.max_abs().max(1.0);
    let tol = 1e-12 * scale;
    let mut eigs: Vec<Complex> = Vec::with_capacity(n);
    let mut m = n; // active block is h[0..m, 0..m]
    let mut sweeps = 0usize;
    let budget = MAX_SWEEPS_PER_EIG * n;

    while m > 0 {
        if m == 1 {
            eigs.push(Complex::from_real(h[(0, 0)]));
            break;
        }
        // Deflation checks.
        if h[(m - 1, m - 2)].abs() <= tol {
            eigs.push(Complex::from_real(h[(m - 1, m - 1)]));
            m -= 1;
            continue;
        }
        if m == 2 || h[(m - 2, m - 3)].abs() <= tol {
            let (l1, l2) =
                eig2(h[(m - 2, m - 2)], h[(m - 2, m - 1)], h[(m - 1, m - 2)], h[(m - 1, m - 1)]);
            // Only deflate the pair when it is genuinely complex or the
            // block has effectively converged; otherwise keep sweeping so
            // real eigenvalues separate properly.
            if l1.im != 0.0 || h[(m - 1, m - 2)].abs() <= tol.max(1e-9 * scale) || m == 2 {
                eigs.push(l1);
                eigs.push(l2);
                m -= 2;
                continue;
            }
        }
        if sweeps >= budget {
            return Err(LinalgError::NoConvergence {
                solver: "qr_eigenvalues",
                iterations: sweeps,
            });
        }
        // Wilkinson shift: eigenvalue of the trailing 2×2 closest to the
        // bottom-right entry; use its real part (exceptional shift every
        // 24 sweeps to break symmetry cycles).
        let shift = if sweeps % 24 == 23 {
            h[(m - 1, m - 1)] + 0.9 * h[(m - 1, m - 2)].abs()
        } else {
            let (l1, l2) =
                eig2(h[(m - 2, m - 2)], h[(m - 2, m - 1)], h[(m - 1, m - 2)], h[(m - 1, m - 1)]);
            let hnn = h[(m - 1, m - 1)];
            if (l1.re - hnn).abs() <= (l2.re - hnn).abs() {
                l1.re
            } else {
                l2.re
            }
        };
        qr_sweep(&mut h, m, shift);
        sweeps += 1;
    }
    eigs.sort_by(|x, y| y.abs().partial_cmp(&x.abs()).unwrap_or(std::cmp::Ordering::Equal));
    Ok(eigs)
}

/// Spectral radius: `max |λᵢ(A)|`.
///
/// # Errors
///
/// See [`eigenvalues`].
pub fn spectral_radius(a: &Mat) -> Result<f64> {
    Ok(eigenvalues(a)?.first().map(|l| l.abs()).unwrap_or(0.0))
}

/// `true` if the discrete-time system `x[k+1] = A x[k]` is Schur stable
/// (spectral radius < 1).
///
/// # Errors
///
/// See [`eigenvalues`].
pub fn is_schur_stable(a: &Mat) -> Result<bool> {
    Ok(spectral_radius(a)? < 1.0)
}

/// `true` if the continuous-time system `ẋ = A x` is Hurwitz stable (all
/// eigenvalue real parts < 0).
///
/// # Errors
///
/// See [`eigenvalues`].
pub fn is_hurwitz_stable(a: &Mat) -> Result<bool> {
    Ok(eigenvalues(a)?.iter().all(|l| l.re < 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_reals(mut v: Vec<Complex>) -> Vec<f64> {
        v.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap());
        v.into_iter().map(|c| c.re).collect()
    }

    #[test]
    fn diagonal_eigenvalues() {
        let a = Mat::diag(&[3.0, -1.0, 0.5]);
        let e = eigenvalues(&a).unwrap();
        let re = sorted_reals(e);
        assert!((re[0] + 1.0).abs() < 1e-10);
        assert!((re[1] - 0.5).abs() < 1e-10);
        assert!((re[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2_real() {
        // [[2,1],[1,2]] -> 1, 3
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let re = sorted_reals(eigenvalues(&a).unwrap());
        assert!((re[0] - 1.0).abs() < 1e-10);
        assert!((re[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn complex_pair() {
        // Companion of s^2 + 2s + 5 -> -1 ± 2i
        let a = Mat::from_rows(&[&[0.0, 1.0], &[-5.0, -2.0]]);
        let e = eigenvalues(&a).unwrap();
        assert!((e[0].re + 1.0).abs() < 1e-10);
        assert!((e[0].im.abs() - 2.0).abs() < 1e-10);
        assert!((e[1].im + e[0].im).abs() < 1e-12, "conjugate pair");
    }

    #[test]
    fn mixed_real_and_complex_4x4() {
        // Block diagonal: rotation(θ)*0.8 (complex pair with |λ|=0.8) and
        // diag(0.3, -0.9).
        let th = 1.1_f64;
        let mut a = Mat::zeros(4, 4);
        a.set_block(
            0,
            0,
            &Mat::from_rows(&[
                &[0.8 * th.cos(), -0.8 * th.sin()],
                &[0.8 * th.sin(), 0.8 * th.cos()],
            ]),
        );
        a[(2, 2)] = 0.3;
        a[(3, 3)] = -0.9;
        let e = eigenvalues(&a).unwrap();
        assert_eq!(e.len(), 4);
        // Largest modulus must be 0.9 (the -0.9 real eigenvalue).
        assert!((e[0].abs() - 0.9).abs() < 1e-8);
        let rho = spectral_radius(&a).unwrap();
        assert!((rho - 0.9).abs() < 1e-8);
        assert!(is_schur_stable(&a).unwrap());
    }

    #[test]
    fn similarity_invariance_under_hessenberg() {
        let a = Mat::from_rows(&[
            &[1.0, 2.0, 0.5, -1.0],
            &[0.3, -0.7, 1.1, 0.2],
            &[2.0, 0.1, 0.4, 0.9],
            &[-0.5, 1.3, 0.2, 0.6],
        ]);
        let h = hessenberg(&a).unwrap();
        // Trace is preserved by similarity.
        assert!((h.trace() - a.trace()).abs() < 1e-10);
        // Hessenberg structure: zeros below the first subdiagonal.
        for i in 2..4 {
            for j in 0..(i - 1) {
                assert!(h[(i, j)].abs() < 1e-10);
            }
        }
    }

    #[test]
    fn eigen_sum_matches_trace() {
        let a = Mat::from_rows(&[&[0.2, 1.0, 0.0], &[-1.0, 0.2, 0.5], &[0.1, 0.0, -0.6]]);
        let e = eigenvalues(&a).unwrap();
        let sum_re: f64 = e.iter().map(|c| c.re).sum();
        let sum_im: f64 = e.iter().map(|c| c.im).sum();
        assert!((sum_re - a.trace()).abs() < 1e-8);
        assert!(sum_im.abs() < 1e-8);
    }

    #[test]
    fn hurwitz_check() {
        let stable = Mat::from_rows(&[&[-1.0, 2.0], &[0.0, -3.0]]);
        assert!(is_hurwitz_stable(&stable).unwrap());
        let unstable = Mat::from_rows(&[&[0.1, 0.0], &[0.0, -1.0]]);
        assert!(!is_hurwitz_stable(&unstable).unwrap());
    }

    #[test]
    fn repeated_eigenvalues() {
        // Jordan-ish block: eigenvalue 2 twice.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]);
        let re = sorted_reals(eigenvalues(&a).unwrap());
        assert!((re[0] - 2.0).abs() < 1e-6);
        assert!((re[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn larger_companion_matrix() {
        // Companion matrix of (s-1)(s+2)(s-3)(s+4)(s-0.5)
        // = s^5 + 1.5 s^4 - 14 s^3 - 7.5 s^2 + 31 s - 12.
        // Roots: 1, -2, 3, -4, 0.5.
        let mut a = Mat::zeros(5, 5);
        for i in 0..4 {
            a[(i, i + 1)] = 1.0;
        }
        // last row = [-a0, -a1, -a2, -a3, -a4].
        a[(4, 0)] = 12.0;
        a[(4, 1)] = -31.0;
        a[(4, 2)] = 7.5;
        a[(4, 3)] = 14.0;
        a[(4, 4)] = -1.5;
        let re = sorted_reals(eigenvalues(&a).unwrap());
        let expected = [-4.0, -2.0, 0.5, 1.0, 3.0];
        for (got, want) in re.iter().zip(expected) {
            assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
        }
    }
}
