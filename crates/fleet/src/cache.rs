//! The fingerprint-keyed results cache.
//!
//! Entries are keyed `(config_hash, job_key)` — the same canonical
//! pair the campaign engine bakes into checkpoint keys — so a cache
//! hit is only possible when both the daemon configuration fingerprint
//! *and* the canonical job identity match, and a config change
//! naturally invalidates every entry made under the old hash. Payloads
//! are stored as immutable [`Value`] trees behind `Arc`, and because
//! the vendored `serde_json` prints a `Value` byte-identically to the
//! struct it came from, a replayed payload is byte-for-byte the fresh
//! one. Eviction is FIFO under a capacity bound.

use serde::Value;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The canonical identity of a cacheable result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Campaign-style configuration fingerprint (16 hex digits).
    pub config_hash: String,
    /// Canonical job key within that configuration.
    pub job_key: String,
}

struct CacheState {
    entries: HashMap<CacheKey, Arc<Value>>,
    fifo: VecDeque<CacheKey>,
}

/// A bounded `(config_hash, job_key)` → result-payload cache.
pub struct ResultsCache {
    state: Mutex<CacheState>,
    capacity: usize,
}

impl ResultsCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        ResultsCache {
            state: Mutex::new(CacheState { entries: HashMap::new(), fifo: VecDeque::new() }),
            capacity,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache lock").entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached payload for `key`, if present.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Value>> {
        self.state.lock().expect("cache lock").entries.get(key).cloned()
    }

    /// Stores `payload` under `key`, evicting the oldest entry when at
    /// capacity. Re-inserting an existing key replaces the payload
    /// without consuming a slot.
    pub fn put(&self, key: CacheKey, payload: Arc<Value>) {
        if self.capacity == 0 {
            return;
        }
        let mut state = self.state.lock().expect("cache lock");
        if state.entries.insert(key.clone(), payload).is_some() {
            return;
        }
        state.fifo.push_back(key);
        while state.entries.len() > self.capacity {
            if let Some(oldest) = state.fifo.pop_front() {
                state.entries.remove(&oldest);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(hash: &str, job: &str) -> CacheKey {
        CacheKey { config_hash: hash.to_string(), job_key: job.to_string() }
    }

    #[test]
    fn hit_returns_the_stored_payload() {
        let cache = ResultsCache::new(4);
        let payload = Arc::new(Value::Str("report".into()));
        cache.put(key("aaaa", "job-1"), Arc::clone(&payload));
        assert_eq!(cache.get(&key("aaaa", "job-1")), Some(payload));
    }

    #[test]
    fn config_hash_partitions_the_keyspace() {
        let cache = ResultsCache::new(4);
        cache.put(key("aaaa", "job-1"), Arc::new(Value::U64(1)));
        // The same job key under a different config hash is a miss —
        // this is how a config change invalidates prior results.
        assert_eq!(cache.get(&key("bbbb", "job-1")), None);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let cache = ResultsCache::new(2);
        cache.put(key("h", "a"), Arc::new(Value::U64(1)));
        cache.put(key("h", "b"), Arc::new(Value::U64(2)));
        cache.put(key("h", "c"), Arc::new(Value::U64(3)));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key("h", "a")), None);
        assert!(cache.get(&key("h", "b")).is_some());
        assert!(cache.get(&key("h", "c")).is_some());
    }

    #[test]
    fn reinsert_replaces_without_evicting() {
        let cache = ResultsCache::new(2);
        cache.put(key("h", "a"), Arc::new(Value::U64(1)));
        cache.put(key("h", "b"), Arc::new(Value::U64(2)));
        cache.put(key("h", "a"), Arc::new(Value::U64(9)));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key("h", "a")), Some(Arc::new(Value::U64(9))));
        assert!(cache.get(&key("h", "b")).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultsCache::new(0);
        cache.put(key("h", "a"), Arc::new(Value::U64(1)));
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key("h", "a")), None);
    }
}
