//! Camera sensor model: spectral crosstalk, noise, Bayer sampling.
//!
//! The scene renderer in `lkas-scene` produces *scene-referred* linear RGB
//! irradiance. This module turns that irradiance into the RAW Bayer frame
//! an automotive sensor would deliver:
//!
//! 1. scale by the illumination level (exposure is held fixed, as in the
//!    paper's HiL setup where the ISP must cope with night scenes),
//! 2. mix channels through the sensor's spectral-crosstalk matrix (the
//!    inverse of which is the ISP's *color map* CCM),
//! 3. add photon shot noise (variance ∝ signal) and read noise
//!    (constant variance),
//! 4. sample the RGGB mosaic.

use crate::image::{BayerChannel, RawImage, RgbImage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Spectral crosstalk matrix of the modeled sensor (rows: sensor R/G/B
/// response; columns: scene R/G/B). Deliberately leaky so that the ISP's
/// color-map stage (which applies the inverse) visibly matters for
/// color contrast — exactly the behaviour the paper exploits for yellow
/// lanes (Table III rows with S3/S4 keep CM; S7/S8 drop it).
pub const CROSSTALK: [[f32; 3]; 3] = [[0.66, 0.26, 0.08], [0.22, 0.62, 0.16], [0.10, 0.30, 0.60]];

/// Configuration of the sensor model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorConfig {
    /// Standard deviation of the signal-independent read noise, in
    /// full-well-normalized units.
    pub read_noise: f32,
    /// Photon-shot-noise coefficient: noise variance contribution is
    /// `shot_noise² · signal`.
    pub shot_noise: f32,
    /// Fixed analog gain applied after exposure (models the camera's
    /// fixed operating point in the HiL setup).
    pub gain: f32,
}

impl Default for SensorConfig {
    fn default() -> Self {
        // Tuned so that daytime SNR is high (~40 dB) while `dark`
        // (illumination 0.15) scenes drop to a regime where denoise and
        // tone map visibly change detection quality.
        SensorConfig { read_noise: 0.012, shot_noise: 0.02, gain: 1.0 }
    }
}

/// A deterministic (seeded) camera sensor.
///
/// # Example
///
/// ```
/// use lkas_imaging::image::RgbImage;
/// use lkas_imaging::sensor::{Sensor, SensorConfig};
///
/// let scene = RgbImage::filled(8, 8, [0.5, 0.5, 0.5]);
/// let mut sensor = Sensor::new(SensorConfig::default(), 7);
/// let raw = sensor.capture(&scene, 1.0);
/// assert_eq!((raw.width(), raw.height()), (8, 8));
/// ```
#[derive(Debug, Clone)]
pub struct Sensor {
    config: SensorConfig,
    rng: StdRng,
}

impl Sensor {
    /// Creates a sensor with the given configuration and RNG seed.
    pub fn new(config: SensorConfig, seed: u64) -> Self {
        Sensor { config, rng: StdRng::seed_from_u64(seed) }
    }

    /// Borrow the sensor configuration.
    pub fn config(&self) -> &SensorConfig {
        &self.config
    }

    /// Captures a scene-referred linear RGB frame into a RAW Bayer frame
    /// under the given `illumination` scale (1.0 = full daylight).
    ///
    /// Convenience wrapper over [`Sensor::capture_into`] that allocates a
    /// fresh RAW frame per call.
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions are odd (Bayer frames need even
    /// dimensions).
    pub fn capture(&mut self, scene: &RgbImage, illumination: f32) -> RawImage {
        let mut raw = RawImage::new(scene.width(), scene.height());
        self.capture_into(scene, illumination, &mut raw);
        raw
    }

    /// Captures a scene-referred linear RGB frame into a caller-owned RAW
    /// Bayer frame (resized as needed) — the allocation-free capture
    /// path. This is the single capture implementation; RNG consumption
    /// is identical to [`Sensor::capture`].
    ///
    /// # Panics
    ///
    /// Panics if the scene dimensions are odd (Bayer frames need even
    /// dimensions).
    pub fn capture_into(&mut self, scene: &RgbImage, illumination: f32, raw: &mut RawImage) {
        let (w, h) = (scene.width(), scene.height());
        raw.reshape(w, h);
        let g = self.config.gain;
        for y in 0..h {
            for x in 0..w {
                let px = scene.get(x, y);
                // Illumination scaling happens in the scene-referred
                // domain (light level), then sensor crosstalk.
                let lit = [px[0] * illumination, px[1] * illumination, px[2] * illumination];
                let row = match raw.channel_at(x, y) {
                    BayerChannel::Red => CROSSTALK[0],
                    BayerChannel::GreenR | BayerChannel::GreenB => CROSSTALK[1],
                    BayerChannel::Blue => CROSSTALK[2],
                };
                let signal = (row[0] * lit[0] + row[1] * lit[1] + row[2] * lit[2]) * g;
                let var = self.config.read_noise.powi(2)
                    + self.config.shot_noise.powi(2) * signal.max(0.0);
                let noise = self.sample_gaussian() * var.sqrt();
                raw.set(x, y, (signal + noise).clamp(0.0, 1.0));
            }
        }
    }

    /// Standard normal sample via Box–Muller (keeps the crate free of a
    /// distributions dependency).
    fn sample_gaussian(&mut self) -> f32 {
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

// ---------------------------------------------------------------------
// RAW-domain fault primitives
//
// Deterministic Bayer-frame corruptions applied *between* sensor capture
// and the ISP — the hardware failure modes (defective photosites, readout
// interference, auto-exposure glitches) that the `lkas-faults` campaign
// injects. They live here because they are operations on `RawImage`,
// mirroring the real corruption point in the imaging chain.
// ---------------------------------------------------------------------

/// Saturates a deterministic pseudo-random subset of photosites to
/// full-well ("hot" pixels). `density` is the expected fraction of
/// affected photosites; the affected set is a pure function of `seed`.
pub fn inject_hot_pixels(raw: &mut RawImage, density: f32, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for v in raw.as_mut_slice() {
        if rng.gen_range(0.0f32..1.0) < density {
            *v = 1.0;
        }
    }
}

/// Scales every `period`-th row (offset by `phase`) by `gain` — the
/// horizontal banding of readout interference. `period == 0` is a no-op.
pub fn inject_row_banding(raw: &mut RawImage, period: usize, gain: f32, phase: usize) {
    if period == 0 {
        return;
    }
    let (w, h) = (raw.width(), raw.height());
    for y in 0..h {
        if (y + phase) % period == 0 {
            for x in 0..w {
                let v = raw.get(x, y);
                raw.set(x, y, (v * gain).clamp(0.0, 1.0));
            }
        }
    }
}

/// Scales the whole frame by `gain`, clamping into the sensor's unit
/// range — an auto-exposure glitch. Gains above 1 clip highlights,
/// gains below 1 crush the frame toward the noise floor.
pub fn inject_exposure_glitch(raw: &mut RawImage, gain: f32) {
    for v in raw.as_mut_slice() {
        *v = (*v * gain).clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_scene(v: f32) -> RgbImage {
        RgbImage::filled(64, 64, [v, v, v])
    }

    #[test]
    fn capture_preserves_dimensions() {
        let mut s = Sensor::new(SensorConfig::default(), 1);
        let raw = s.capture(&flat_scene(0.5), 1.0);
        assert_eq!((raw.width(), raw.height()), (64, 64));
    }

    #[test]
    fn deterministic_given_seed() {
        let scene = flat_scene(0.3);
        let a = Sensor::new(SensorConfig::default(), 99).capture(&scene, 1.0);
        let b = Sensor::new(SensorConfig::default(), 99).capture(&scene, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn capture_into_matches_capture() {
        // Same seed, same scene: the out-param path must consume the RNG
        // identically and produce a bit-identical frame, even when the
        // destination buffer arrives with stale contents and the wrong
        // dimensions.
        let scene = flat_scene(0.3);
        let fresh = Sensor::new(SensorConfig::default(), 99).capture(&scene, 1.0);
        let mut reused = RawImage::new(8, 8);
        Sensor::new(SensorConfig::default(), 99).capture_into(&scene, 1.0, &mut reused);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn different_seeds_differ() {
        let scene = flat_scene(0.3);
        let a = Sensor::new(SensorConfig::default(), 1).capture(&scene, 1.0);
        let b = Sensor::new(SensorConfig::default(), 2).capture(&scene, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn illumination_scales_signal() {
        let mut s = Sensor::new(SensorConfig { read_noise: 0.0, shot_noise: 0.0, gain: 1.0 }, 0);
        let day = s.capture(&flat_scene(0.5), 1.0);
        let night = s.capture(&flat_scene(0.5), 0.2);
        let day_mean: f32 = day.as_slice().iter().sum::<f32>() / day.as_slice().len() as f32;
        let night_mean: f32 = night.as_slice().iter().sum::<f32>() / night.as_slice().len() as f32;
        assert!((night_mean / day_mean - 0.2).abs() < 1e-3);
    }

    #[test]
    fn snr_degrades_in_low_light() {
        // Relative noise (std/mean) must be higher at low illumination:
        // that is what makes denoise matter at night.
        let cfg = SensorConfig::default();
        let snr = |illum: f32| -> f32 {
            let mut s = Sensor::new(cfg.clone(), 5);
            let raw = s.capture(&flat_scene(0.4), illum);
            // Use only red photosites so the Bayer pattern does not
            // inflate the variance estimate.
            let mut vals = Vec::new();
            for y in (0..64).step_by(2) {
                for x in (0..64).step_by(2) {
                    vals.push(raw.get(x, y));
                }
            }
            let m = vals.iter().sum::<f32>() / vals.len() as f32;
            let var = vals.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / vals.len() as f32;
            m / var.sqrt()
        };
        assert!(snr(1.0) > 2.0 * snr(0.15));
    }

    #[test]
    fn crosstalk_desaturates_colors() {
        // A pure red scene must leak into green/blue photosites.
        let mut s = Sensor::new(SensorConfig { read_noise: 0.0, shot_noise: 0.0, gain: 1.0 }, 0);
        let scene = RgbImage::filled(4, 4, [1.0, 0.0, 0.0]);
        let raw = s.capture(&scene, 1.0);
        let red = raw.get(0, 0);
        let green = raw.get(1, 0);
        let blue = raw.get(1, 1);
        assert!(red > green && green > blue);
        assert!(green > 0.1, "crosstalk must leak red into green photosites");
    }

    #[test]
    fn values_clamped_to_unit_range() {
        let mut s = Sensor::new(SensorConfig { read_noise: 0.5, shot_noise: 0.5, gain: 2.0 }, 3);
        let raw = s.capture(&flat_scene(1.0), 1.0);
        assert!(raw.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn hot_pixels_saturate_about_density_and_are_deterministic() {
        let mut s = Sensor::new(SensorConfig { read_noise: 0.0, shot_noise: 0.0, gain: 1.0 }, 0);
        let mut a = s.capture(&flat_scene(0.2), 1.0);
        let mut b = a.clone();
        inject_hot_pixels(&mut a, 0.05, 77);
        inject_hot_pixels(&mut b, 0.05, 77);
        assert_eq!(a, b, "same seed ⇒ same hot-pixel set");
        let hot = a.as_slice().iter().filter(|&&v| v == 1.0).count();
        let n = a.as_slice().len();
        let expected = (n as f32 * 0.05) as usize;
        assert!(
            hot > expected / 2 && hot < expected * 2,
            "hot count {hot} should be near {expected}"
        );
        let mut c = s.capture(&flat_scene(0.2), 1.0);
        inject_hot_pixels(&mut c, 0.05, 78);
        assert_ne!(a, c, "different seeds pick different photosites");
    }

    #[test]
    fn row_banding_hits_only_the_period_rows() {
        let mut s = Sensor::new(SensorConfig { read_noise: 0.0, shot_noise: 0.0, gain: 1.0 }, 0);
        let clean = s.capture(&flat_scene(0.4), 1.0);
        let mut banded = clean.clone();
        inject_row_banding(&mut banded, 4, 0.2, 1);
        for y in 0..banded.height() {
            for x in 0..banded.width() {
                if (y + 1) % 4 == 0 {
                    assert!(banded.get(x, y) < clean.get(x, y), "row {y} must be darkened");
                } else {
                    assert_eq!(banded.get(x, y), clean.get(x, y), "row {y} must be untouched");
                }
            }
        }
        // Degenerate period is a no-op rather than a divide-by-zero.
        let mut untouched = clean.clone();
        inject_row_banding(&mut untouched, 0, 0.2, 0);
        assert_eq!(untouched, clean);
    }

    #[test]
    fn exposure_glitch_scales_and_clips() {
        let mean = |r: &RawImage| r.as_slice().iter().sum::<f32>() / r.as_slice().len() as f32;
        let mut s = Sensor::new(SensorConfig { read_noise: 0.0, shot_noise: 0.0, gain: 1.0 }, 0);
        let clean = s.capture(&flat_scene(0.4), 1.0);
        let mut over = clean.clone();
        inject_exposure_glitch(&mut over, 4.0);
        assert!(over.as_slice().iter().all(|&v| v <= 1.0), "over-exposure clips at full well");
        assert!(mean(&over) > mean(&clean));
        let mut under = clean.clone();
        inject_exposure_glitch(&mut under, 0.25);
        let ratio = mean(&under) / mean(&clean);
        assert!((ratio - 0.25).abs() < 1e-3, "under-exposure scales linearly (ratio {ratio})");
    }
}
