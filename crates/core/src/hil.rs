//! Closed-loop hardware-in-the-loop simulator (the IMACS-framework
//! substitute, Fig. 2).
//!
//! One simulator run drives the vehicle along a track under a chosen
//! design ([`Case`]): every sampling period the camera frame is
//! rendered, captured through the noisy sensor, processed by the
//! currently configured ISP, the invoked classifiers update the
//! situation estimate, the knobs are reconfigured (PR/control in the
//! same cycle, ISP one cycle later — Sec. III-D), perception measures
//! `y_L`, the situation-specific LQR computes the steering command, and
//! the command takes effect `τ` after the sampling instant. Physics
//! advances at the 5 ms Webots step throughout.

use crate::cases::Case;
use crate::degrade::{CoastInput, DegradationConfig, DegradationPolicy};
use crate::errprofile::ProfileFitter;
use crate::identify::{BundleBatch, ClassifierBundle, SituationEstimate};
use crate::knobs::{coarse_roi_for, fine_roi_for, speed_for, KnobTable, KnobTuning};
use crate::qoc::QocAccumulator;
use crate::tuner::{KnobTuner, TunerConfig, TunerEvent};
use lkas_control::controller::{Controller, Measurement};
use lkas_control::design::{design_controller_cached, ControllerConfig};
use lkas_control::errprofile::PerceptionErrorProfile;
use lkas_faults::{apply_bayer_fault, derive_cycle_seed, FaultPlan, Misprediction};
use lkas_imaging::image::{RawImage, RgbImage};
use lkas_imaging::isp::{IspConfig, IspPipeline};
use lkas_imaging::kernel::KernelBackend;
use lkas_imaging::sensor::{Sensor, SensorConfig};
use lkas_imaging::Scratch;
use lkas_perception::pipeline::{Perception, PerceptionConfig, PerceptionScratch};
use lkas_platform::schedule::ClassifierSet;
use lkas_runtime::{
    Counter, CycleDelta, FlightRecorder, Metrics, Stage, Subscription, TelemetryBus, TraceSink,
};
use lkas_scene::camera::Camera;
use lkas_scene::render::SceneRenderer;
use lkas_scene::situation::SituationFeatures;
use lkas_scene::track::Track;
use lkas_vehicle::sim::{VehicleSim, VehicleState};
use lkas_vehicle::PHYSICS_STEP_S;
use std::cell::RefCell;
use std::sync::Arc;

/// Where the situation decisions come from.
#[derive(Debug, Clone)]
pub enum SituationSource {
    /// Ground truth from the track, still subject to the invocation
    /// schedule's staleness. Used by the design-time characterization
    /// (the designer *knows* the situation, Sec. III-B) and as the
    /// perfect-classifier ablation.
    Oracle,
    /// The trained classifier bundle runs on the actual ISP output —
    /// the full runtime stack.
    Trained(Arc<ClassifierBundle>),
}

/// Configuration of one HiL run.
///
/// Construct with [`HilConfig::new`] plus the `with_*` builders; the
/// struct is `#[non_exhaustive]`, so downstream crates go through the
/// builder surface (individual fields stay readable and assignable).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct HilConfig {
    /// The design under evaluation.
    pub case: Case,
    /// Situation decision source.
    pub source: SituationSource,
    /// Characterization table for the knob lookup (Cases 4 and
    /// variable-invocation; ignored by Cases 1–3).
    pub knob_table: KnobTable,
    /// Sensor noise/gain model (defaults to the nominal automotive
    /// sensor). Overriding it models hardware drift away from the
    /// characterized operating point.
    pub sensor: SensorConfig,
    /// RNG seed for sensor noise.
    pub seed: u64,
    /// Hard wall-clock cap on simulated time (s).
    pub max_time_s: f64,
    /// Camera model (defaults to the 512×256 automotive camera).
    pub camera: Camera,
    /// Initial situation assumed by the estimator (defaults to the
    /// benign boot default).
    pub initial_estimate: Option<SituationFeatures>,
    /// Record a per-sample trace (measurement, truth, knobs) in the
    /// result. Off by default; used by diagnostics and the examples.
    pub record_trace: bool,
    /// Overrides the case's classifier invocation scheme (the extension
    /// hook for the paper's "more complete invocation scheme" future
    /// work). `None` uses [`Case::invocation_scheme`].
    pub scheme_override: Option<crate::invocation::InvocationScheme>,
    /// Telemetry registry recording per-stage timings and event
    /// counters for this run. Share one `Arc` across the runs of a
    /// sweep to aggregate; `None` disables recording.
    pub metrics: Option<Arc<Metrics>>,
    /// Deterministic fault campaign injected into the loop. `None`
    /// runs fault-free.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Graceful-degradation policy guarding against perception
    /// failures. `None` leaves the loop unhardened (the controller's
    /// observer coasts on misses, knobs never fall back).
    pub degradation: Option<DegradationConfig>,
    /// Per-cycle trace sink (one per run, obtained from a
    /// `TraceRecorder`). Records stage spans and instant events with
    /// deterministic virtual timestamps; `None` disables tracing.
    pub trace_sink: Option<TraceSink>,
    /// Worker threads for the row-tiled ISP stages (demosaic, denoise).
    /// `1` (the default) keeps every stage on the calling thread, which
    /// is also the only fully allocation-free steady state; outputs are
    /// byte-identical at any thread count.
    pub tile_threads: usize,
    /// Online re-characterization layer (see [`crate::tuner`]). When
    /// set on an ISP-adaptive case, knob decisions consult the bandit
    /// instead of the static table lookup; in safe mode the tuner
    /// falls back to the characterized prior. `None` (the default)
    /// keeps the static Table III behavior.
    pub tuner: Option<TunerConfig>,
    /// Per-cycle telemetry stream. When set, the loop publishes one
    /// [`CycleDelta`] per control sample (stage latency samples when a
    /// registry is attached, counter deltas, the lane-offset estimate
    /// vs ground truth, tuner/fault/degradation labels) with
    /// drop-oldest backpressure: a slow subscriber loses old frames
    /// (accounted on the bus as `stream_dropped`) but never stalls the
    /// control loop. `None` leaves external streaming off; a run with
    /// a tuner still streams internally (the tuner's reward window is
    /// fed from the stream).
    pub stream: Option<Arc<TelemetryBus>>,
    /// Flight recorder: a bounded ring of the most recent cycle events,
    /// dumpable as a post-mortem artifact. The loop feeds it every
    /// published delta; with an auto-dump path configured the recorder
    /// writes itself out on safe-mode entry (`degraded_enter`).
    pub flight: Option<Arc<FlightRecorder>>,
    /// Fit a [`PerceptionErrorProfile`] from this run: every cycle's
    /// raw perception output (pre-degradation-substitution) is compared
    /// against ground truth and the moments are returned in
    /// [`HilResult::error_profile`]. Off by default. The fitter taps
    /// the loop directly (not the drop-oldest telemetry stream), so the
    /// fitted profile is exact and independent of stream consumers.
    pub error_fit: bool,
    /// Kernel backend for the data-parallel frame-path kernels
    /// (demosaic/denoise/gamut in the ISP, rectify/binarize in
    /// perception). The default (`KernelBackend::lanes()`) is
    /// bit-identical to `KernelBackend::Scalar`; the fixed-point
    /// `lanes-q14` backend trades a documented tolerance band for
    /// integer arithmetic. A runtime knob only — deliberately not part
    /// of any campaign fingerprint.
    pub kernel_backend: KernelBackend,
}

/// One control sample of a recorded trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceSample {
    /// Sample time (ms).
    pub t_ms: f64,
    /// Measured `y_L` (m), if perception succeeded.
    pub y_l_measured: Option<f64>,
    /// Ground-truth `y_L` (m).
    pub y_l_true: f64,
    /// Steering command issued (rad).
    pub steering: f64,
    /// Active ISP configuration.
    pub isp: IspConfig,
    /// Active ROI.
    pub roi: lkas_perception::roi::Roi,
    /// Vehicle speed (m/s).
    pub vx: f64,
    /// Track sector index.
    pub sector: usize,
}

impl HilConfig {
    /// A configuration with the paper's Table III tunings preloaded.
    pub fn new(case: Case, source: SituationSource) -> Self {
        HilConfig {
            case,
            source,
            knob_table: KnobTable::paper_table3(),
            sensor: SensorConfig::default(),
            seed: 1,
            max_time_s: 600.0,
            camera: Camera::default_automotive(),
            initial_estimate: None,
            record_trace: false,
            scheme_override: None,
            metrics: None,
            fault_plan: None,
            degradation: None,
            trace_sink: None,
            tile_threads: 1,
            tuner: None,
            stream: None,
            flight: None,
            error_fit: false,
            kernel_backend: KernelBackend::default(),
        }
    }

    /// Replaces the knob table (builder style).
    pub fn with_knob_table(mut self, table: KnobTable) -> Self {
        self.knob_table = table;
        self
    }

    /// Replaces the camera (builder style).
    pub fn with_camera(mut self, camera: Camera) -> Self {
        self.camera = camera;
        self
    }

    /// Replaces the sensor model (builder style).
    pub fn with_sensor(mut self, sensor: SensorConfig) -> Self {
        self.sensor = sensor;
        self
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Seeds the estimator with a known initial situation (builder
    /// style) — used by the design-time characterization, where the
    /// designer knows the situation up front.
    pub fn with_initial_estimate(mut self, situation: SituationFeatures) -> Self {
        self.initial_estimate = Some(situation);
        self
    }

    /// Overrides the case's classifier invocation scheme (builder
    /// style).
    pub fn with_scheme_override(mut self, scheme: crate::invocation::InvocationScheme) -> Self {
        self.scheme_override = Some(scheme);
        self
    }

    /// Enables per-sample trace recording (builder style).
    pub fn with_trace(mut self, record_trace: bool) -> Self {
        self.record_trace = record_trace;
        self
    }

    /// Replaces the simulated-time cap (builder style).
    pub fn with_max_time(mut self, max_time_s: f64) -> Self {
        self.max_time_s = max_time_s;
        self
    }

    /// Attaches a telemetry registry (builder style).
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Injects a fault campaign into the run (builder style).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables the graceful-degradation policy (builder style).
    pub fn with_degradation(mut self, config: DegradationConfig) -> Self {
        self.degradation = Some(config);
        self
    }

    /// Attaches a per-cycle trace sink (builder style).
    pub fn with_trace_sink(mut self, sink: TraceSink) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Sets the worker-thread count of the row-tiled ISP stages
    /// (builder style). Clamped to at least 1.
    pub fn with_tile_threads(mut self, threads: usize) -> Self {
        self.tile_threads = threads.max(1);
        self
    }

    /// Enables the online re-characterization tuner (builder style).
    pub fn with_tuner(mut self, tuner: TunerConfig) -> Self {
        self.tuner = Some(tuner);
        self
    }

    /// Attaches a per-cycle telemetry stream (builder style).
    pub fn with_stream(mut self, bus: Arc<TelemetryBus>) -> Self {
        self.stream = Some(bus);
        self
    }

    /// Attaches a flight recorder (builder style).
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.flight = Some(recorder);
        self
    }

    /// Enables perception-error-profile fitting (builder style).
    pub fn with_error_fit(mut self, error_fit: bool) -> Self {
        self.error_fit = error_fit;
        self
    }

    /// Selects the frame-path kernel backend (builder style).
    pub fn with_kernel_backend(mut self, backend: KernelBackend) -> Self {
        self.kernel_backend = backend;
        self
    }
}

/// Outcome of one HiL run.
#[derive(Debug, Clone)]
pub struct HilResult {
    /// QoC accumulator with per-sector statistics.
    pub qoc: QocAccumulator,
    /// `true` if the vehicle left the lane before finishing.
    pub crashed: bool,
    /// Sector index where the crash occurred.
    pub crash_sector: Option<usize>,
    /// Simulated time (s).
    pub time_s: f64,
    /// Number of control samples taken.
    pub samples: u64,
    /// Control samples in which perception found no lane.
    pub perception_failures: u64,
    /// Number of knob reconfigurations performed.
    pub reconfigurations: u64,
    /// Control samples whose situation estimate disagreed with ground
    /// truth (diagnostic; 0 for the oracle source only if no staleness).
    pub misidentifications: u64,
    /// Camera frames dropped by the fault plan.
    pub frame_drops: u64,
    /// Control samples with at least one injected fault active.
    pub faulted_cycles: u64,
    /// Control samples spent in degraded (safe) mode.
    pub degraded_samples: u64,
    /// Times the degradation policy entered safe mode.
    pub degraded_entries: u64,
    /// Misses bridged by the hold-and-extrapolate mechanism.
    pub measurement_holds: u64,
    /// Past-budget misses (or gated glitch frames) bridged by the
    /// degradation policy's observer coast instead of going blind
    /// (0 under the legacy hold policy).
    pub observer_coasts: u64,
    /// Coast-ending measurements accepted through the re-acquisition
    /// innovation gate.
    pub observer_reacquisitions: u64,
    /// Cycles whose scene render was rejected with a typed
    /// `RenderError` (the loop coasts frameless instead of aborting).
    pub render_errors: u64,
    /// Decision windows the online tuner opened (0 without a tuner).
    pub tuner_decisions: u64,
    /// Exploratory tuner picks (unexplored-arm visits plus
    /// epsilon-random draws).
    pub tuner_explorations: u64,
    /// Safe-mode entries in which the tuner fell back to the
    /// characterized prior.
    pub tuner_fallbacks: u64,
    /// The tuner's updated knob store (present only when a tuner ran:
    /// the live, queryable output of online re-characterization).
    pub knob_store: Option<crate::characterize::KnobStore>,
    /// Raw perception-error moments accumulated over this run (present
    /// only under [`HilConfig::error_fit`]). Kept as moments rather
    /// than a fitted profile so shard-split accumulations absorb
    /// exactly; [`HilResult::error_profile`] fits on demand.
    pub error_fit: Option<ProfileFitter>,
    /// Per-sample trace (empty unless [`HilConfig::record_trace`]).
    pub trace: Vec<TraceSample>,
}

impl HilResult {
    /// Overall MAE (Eq. (1)).
    pub fn overall_mae(&self) -> Option<f64> {
        self.qoc.overall_mae()
    }

    /// MAE over non-crashed sectors (the paper's footnote-7 rule).
    pub fn mae_excluding_crashed(&self) -> Option<f64> {
        self.qoc.mae_excluding_crashed()
    }

    /// The perception error profile fitted from this run's accumulated
    /// moments (`None` unless the run was configured with
    /// [`HilConfig::error_fit`]).
    pub fn error_profile(&self) -> Option<PerceptionErrorProfile> {
        self.error_fit.as_ref().map(ProfileFitter::fit)
    }
}

/// The closed-loop simulator.
#[derive(Debug)]
pub struct HilSimulator {
    track: Track,
    config: HilConfig,
}

impl HilSimulator {
    /// Creates a simulator for a track and configuration.
    pub fn new(track: Track, config: HilConfig) -> Self {
        HilSimulator { track, config }
    }

    /// Runs the closed loop to track completion, departure, or the time
    /// cap, and returns the result.
    ///
    /// # Panics
    ///
    /// Panics if a controller design fails for a visited `(v, h, τ)`
    /// configuration (cannot happen for the built-in knob space).
    pub fn run(self) -> HilResult {
        let HilSimulator { track, config } = self;
        let metrics = config.metrics.as_deref();
        // All event accounting goes through one run-local tally (and is
        // mirrored into the shared registry); the result's counters are
        // read back from it at the end.
        let tally = Tally { local: Metrics::new(), shared: metrics };
        let sink = config.trace_sink.as_ref();
        let n_sectors = track.sectors().len();
        let scheme =
            config.scheme_override.clone().unwrap_or_else(|| config.case.invocation_scheme());
        if let Some(s) = sink {
            s.instant(
                0,
                "run_start",
                Some(format!("case={:?} scheme={}", config.case, scheme.describe())),
            );
        }
        let delay_set = config.case.delay_classifier_set();
        let fault_plan = config.fault_plan.clone();
        let plan_seed = fault_plan.as_ref().map_or(0, |p| p.seed);
        let mut policy = config.degradation.map(DegradationPolicy::new);
        let mut fitter = if config.error_fit { Some(ProfileFitter::new()) } else { None };

        // Initial knobs & controller.
        let mut estimate = match config.initial_estimate {
            Some(s) => SituationEstimate::with_initial(s),
            None => SituationEstimate::new(),
        };
        let mut knobs = knobs_for_case(config.case, &estimate.current(), &config.knob_table);
        // The online re-characterization layer only makes sense where
        // knob decisions are situation-adaptive (Case 4 and the
        // variable-invocation scheme); on the static cases it is inert.
        let mut tuner = if config.case.adapts_isp() {
            config.tuner.clone().map(|t| KnobTuner::new(t, &config.knob_table))
        } else {
            None
        };
        // ---- per-cycle telemetry stream ------------------------------
        // With a tuner but no external stream the loop still streams
        // internally: the tuner's reward window is fed from a private
        // bus subscription drained every cycle, so the stream-fed path
        // is the *only* path (the reward values and their interleaving
        // with `select` are unchanged from the old in-loop buffer).
        let internal_bus = if tuner.is_some() && config.stream.is_none() {
            Some(TelemetryBus::new(4))
        } else {
            None
        };
        let bus: Option<&TelemetryBus> = config.stream.as_deref().or(internal_bus.as_ref());
        let tuner_sub: Option<Subscription> =
            if tuner.is_some() { bus.map(TelemetryBus::subscribe) } else { None };
        let flight = config.flight.as_deref();
        let wants_delta = bus.is_some() || flight.is_some();
        let clock = StageClock {
            metrics,
            probe: RefCell::new(Vec::new()),
            probing: wants_delta && metrics.is_some(),
        };
        let mut counter_base = vec![0u64; Counter::ALL.len()];
        let mut open_delta: Option<CycleDelta> = None;

        let mut controller_cfg = knobs.controller_config(delay_set);
        let mut controller = fetch_controller(&tally, &controller_cfg);

        // Plant, camera stack.
        let renderer = SceneRenderer::new(config.camera.clone());
        let mut sensor = Sensor::new(config.sensor.clone(), config.seed);
        let mut isp = IspPipeline::new(knobs.isp).with_backend(config.kernel_backend);
        let mut staged_isp: Option<IspConfig> = None;
        let mut perception =
            Perception::new(PerceptionConfig::new(knobs.roi), config.camera.clone())
                .with_backend(config.kernel_backend);
        // Batched-inference state for the trained classifier trio (one
        // grouped GEMM per layer when a full re-identification window
        // invokes all three). Built once per run; bit-identical to the
        // sequential path.
        let mut bundle_batch = match &config.source {
            SituationSource::Trained(bundle) => Some(BundleBatch::new(bundle)),
            _ => None,
        };
        let mut vehicle = VehicleSim::new(track, VehicleState::centered(knobs.speed_kmph));

        // Reusable frame memory: every cycle writes into the same three
        // image buffers and draws intermediates from the two scratch
        // arenas, so the steady-state frame path performs no heap
        // allocations after the first frame sizes everything.
        let mut imaging_scratch = Scratch::with_threads(config.tile_threads.max(1));
        let mut perception_scratch = PerceptionScratch::new();
        let mut scene_rgb = RgbImage::new(1, 1);
        let mut raw = RawImage::new(2, 2);
        let mut rgb = RgbImage::new(1, 1);

        let mut qoc = QocAccumulator::new(n_sectors);
        let mut frame_index = 0u64;
        let mut trace: Vec<TraceSample> = Vec::new();

        let dt_ms = PHYSICS_STEP_S * 1000.0;
        let mut t_ms = 0.0f64;
        let mut next_sample_ms = 0.0f64;
        // Steering commands pending actuation: (activation time, angle).
        let mut pending: Vec<(f64, f64)> = Vec::new();
        let mut active_cmd = 0.0f64;
        let mut crashed = false;
        let mut crash_sector = None;

        while !vehicle.finished() && vehicle.time_s() < config.max_time_s {
            if t_ms + 1e-9 >= next_sample_ms {
                // ---- control sample -------------------------------------
                // Seal and publish the previous cycle's delta first: the
                // inter-sample Actuation recordings belong to it, and
                // the stream-fed tuner must see cycle N's reward before
                // cycle N+1's `select` — the same interleaving the
                // in-loop buffer had.
                if let Some(delta) = open_delta.take() {
                    publish_delta(
                        delta,
                        &clock,
                        &tally,
                        &mut counter_base,
                        bus,
                        flight,
                        tuner.as_mut(),
                        tuner_sub.as_ref(),
                    );
                }
                let cycle = frame_index;
                if wants_delta {
                    open_delta = Some(CycleDelta::new(cycle));
                }
                tally.incr(Counter::Cycles);
                let faults =
                    fault_plan.as_ref().map(|p| p.faults_at(frame_index)).unwrap_or_default();
                if faults.any() {
                    tally.incr(Counter::FaultsInjected);
                    for label in faults.trace_labels() {
                        if let Some(s) = sink {
                            s.instant(cycle, label, None);
                        }
                        if let Some(d) = open_delta.as_mut() {
                            d.labels.push(label.to_string());
                        }
                    }
                }
                if fault_plan.is_some() {
                    let act = faults.actuation.map(lkas_faults::ActuationFault::to_actuator);
                    if act.is_some() && vehicle.actuator_fault().is_none() {
                        tally.incr(Counter::ActuationFaults);
                    }
                    vehicle.set_actuator_fault(act);
                }
                // Safe-mode state as of the previous cycle's outcome.
                let degraded = policy.as_ref().map_or(false, DegradationPolicy::is_degraded);
                if degraded {
                    tally.incr(Counter::DegradedCycles);
                }
                // Apply the ISP knob staged in the previous cycle
                // (Sec. III-D: "ISP knobs are configured in the next
                // cycle").
                if let Some(cfg) = staged_isp.take() {
                    isp.set_config(cfg);
                }
                // Camera pipeline — skipped entirely on a dropped frame,
                // and abandoned for the cycle on a render rejection. The
                // stages write into the run's reusable buffers.
                let have_frame = if faults.drop_frame {
                    tally.incr(Counter::FrameDrops);
                    false
                } else {
                    let (s, d, psi) = vehicle.camera_pose();
                    let rendered = clock.timed(Stage::Render, || {
                        renderer.render_into(vehicle.track(), s, d, psi, &mut scene_rgb)
                    });
                    match rendered {
                        Ok(()) => {
                            clock.timed(Stage::Sensor, || {
                                sensor.capture_into(&scene_rgb, 1.0, &mut raw)
                            });
                            if let Some(kind) = faults.bayer {
                                apply_bayer_fault(kind, &mut raw, plan_seed, frame_index);
                            }
                            clock.timed(Stage::Isp, || {
                                isp.process_into(&raw, &mut imaging_scratch, &mut rgb)
                            });
                            true
                        }
                        Err(e) => {
                            // An invalid camera no longer aborts the run:
                            // the cycle coasts frameless, like a dropped
                            // frame, and the rejection is counted.
                            tally.incr(Counter::RenderErrors);
                            if let Some(s) = sink {
                                s.instant(cycle, "render_error", Some(e.to_string()));
                            }
                            if let Some(d) = open_delta.as_mut() {
                                d.labels.push("render_error".to_string());
                            }
                            false
                        }
                    }
                };
                if let Some(s) = sink {
                    if have_frame {
                        s.span(cycle, Stage::Render);
                        s.span(cycle, Stage::Sensor);
                        s.span(cycle, Stage::Isp);
                    }
                }

                // Situation identification with the scheduled
                // classifiers (none on a dropped frame; road only
                // while degraded — see `classifiers_for_frame_faulted`).
                let invoked = scheme.classifiers_for_frame_faulted(
                    frame_index,
                    controller_cfg.h_ms,
                    faults.drop_frame,
                    degraded,
                );
                let previous_estimate = estimate.current();
                clock.timed(Stage::Classifier, || match &config.source {
                    SituationSource::Oracle => {
                        // A frame classifier sees the *preview* region,
                        // so the oracle reports the situation ~12 m
                        // ahead (mid-ROI), anticipating transitions the
                        // way the trained classifiers do.
                        let truth = vehicle.preview_situation(ORACLE_PREVIEW_M);
                        estimate.update_from_truth(&truth, invoked);
                    }
                    SituationSource::Trained(bundle) => {
                        if have_frame {
                            let batch =
                                bundle_batch.as_mut().expect("batch built for trained source");
                            estimate.update_from_frame_with(
                                bundle,
                                batch,
                                &rgb,
                                &config.camera,
                                invoked,
                            );
                        }
                    }
                });
                if let Some(s) = sink {
                    s.span(cycle, Stage::Classifier);
                }
                if let Some(mp) = faults.mispredict {
                    // A dropped frame produces no classifier output to
                    // corrupt.
                    if !faults.drop_frame {
                        let forced = match mp {
                            Misprediction::Force(s) => s,
                            Misprediction::Confuse => lkas_nn::classifiers::confuse_situation(
                                &vehicle.preview_situation(ORACLE_PREVIEW_M),
                                derive_cycle_seed(plan_seed, frame_index),
                            ),
                        };
                        estimate.force(forced);
                        tally.incr(Counter::ForcedMispredictions);
                    }
                }
                if estimate.current() != previous_estimate {
                    tally.incr(Counter::SituationSwitches);
                    if let Some(s) = sink {
                        s.instant(cycle, "situation_switch", Some(estimate.current().describe()));
                    }
                    if let Some(d) = open_delta.as_mut() {
                        d.labels.push("situation_switch".to_string());
                    }
                }
                if estimate.current() != vehicle.preview_situation(ORACLE_PREVIEW_M) {
                    tally.incr(Counter::Misidentifications);
                }

                // Knob reconfiguration: PR/control now, ISP next cycle.
                // With the tuner attached the bandit chooses among the
                // layout-compatible arms (and falls back to the
                // characterized prior in safe mode); otherwise the
                // static table decides, overridden in safe mode by the
                // degradation policy's pre-characterized fallback.
                let new_knobs = match tuner.as_mut() {
                    Some(t) => {
                        let choice = t.select(&estimate.current(), degraded);
                        match choice.event {
                            Some(TunerEvent::Decision { explored }) => {
                                tally.incr(Counter::TunerDecisions);
                                if explored {
                                    tally.incr(Counter::TunerExplorations);
                                }
                                let label =
                                    if explored { "tuner_explore" } else { "tuner_decision" };
                                if let Some(s) = sink {
                                    s.instant(
                                        cycle,
                                        label,
                                        Some(format!(
                                            "isp={} roi={}",
                                            choice.tuning.isp.name(),
                                            choice.tuning.roi.name()
                                        )),
                                    );
                                }
                                if let Some(d) = open_delta.as_mut() {
                                    d.labels.push(label.to_string());
                                }
                            }
                            Some(TunerEvent::Fallback) => {
                                tally.incr(Counter::TunerFallbacks);
                                if let Some(s) = sink {
                                    s.instant(cycle, "tuner_fallback", None);
                                }
                                if let Some(d) = open_delta.as_mut() {
                                    d.labels.push("tuner_fallback".to_string());
                                }
                            }
                            None => {}
                        }
                        choice.tuning
                    }
                    None => match (&policy, degraded) {
                        (Some(p), true) => p.safe_tuning(estimate.current().layout),
                        _ => knobs_for_case(config.case, &estimate.current(), &config.knob_table),
                    },
                };
                if new_knobs != knobs {
                    tally.incr(Counter::KnobReconfigurations);
                    if new_knobs.roi != knobs.roi {
                        perception = Perception::new(
                            PerceptionConfig::new(new_knobs.roi),
                            config.camera.clone(),
                        )
                        .with_backend(config.kernel_backend);
                        tally.incr(Counter::PerceptionReconfigurations);
                        if let Some(s) = sink {
                            s.instant(cycle, "reconfig:perception", None);
                        }
                        if let Some(d) = open_delta.as_mut() {
                            d.labels.push("reconfig:perception".to_string());
                        }
                    }
                    if new_knobs.isp != knobs.isp {
                        staged_isp = Some(new_knobs.isp);
                        tally.incr(Counter::IspReconfigurations);
                        if let Some(s) = sink {
                            s.instant(cycle, "reconfig:isp", None);
                        }
                        if let Some(d) = open_delta.as_mut() {
                            d.labels.push("reconfig:isp".to_string());
                        }
                    }
                    vehicle.set_target_speed_kmph(new_knobs.speed_kmph);
                    knobs = new_knobs;
                }
                // Gain scheduling: the LQR/observer are designed per
                // speed; during the (≈1 s) speed transition after a
                // situation switch the controller matching the *actual*
                // speed is used, then handed over at the midpoint.
                let design_speed = if vehicle.state().vx > lkas_control::model::kmph_to_mps(40.0) {
                    50.0
                } else {
                    30.0
                };
                // In safe mode only the road classifier runs, so the
                // loop is also scheduled for it: the shorter h/τ mean a
                // fixed-cycle outage costs less wall-clock time blind.
                let cycle_delay_set = if degraded { ClassifierSet::road_only() } else { delay_set };
                let mut new_cfg = ControllerConfig {
                    speed_kmph: design_speed,
                    ..knobs.controller_config(cycle_delay_set)
                };
                if config.case == Case::VariableInvocation && !degraded {
                    // Sec. IV-E: the variable scheme keeps the
                    // situation-tuned sampling period (as if all three
                    // classifiers ran) but enjoys the shorter
                    // single-classifier delay — the QoC gain the paper
                    // reports comes from the reduced τ, not a faster h.
                    new_cfg.h_ms = knobs.controller_config(ClassifierSet::all()).h_ms;
                }
                if new_cfg != controller_cfg {
                    let mut next =
                        clock.timed(Stage::Control, || fetch_controller(&tally, &new_cfg));
                    next.adopt_state(&controller);
                    controller = next;
                    controller_cfg = new_cfg;
                    tally.incr(Counter::ControlReconfigurations);
                    if let Some(s) = sink {
                        s.instant(cycle, "reconfig:control", None);
                    }
                    if let Some(d) = open_delta.as_mut() {
                        d.labels.push("reconfig:control".to_string());
                    }
                }

                // Perception, then the degradation policy's substitution.
                let raw_y_l = if have_frame {
                    let out = clock.timed(Stage::Perception, || {
                        perception.process_into(&rgb, &mut perception_scratch)
                    });
                    match out {
                        Ok(out) => Some(out.y_l),
                        Err(_) => {
                            tally.incr(Counter::PerceptionFailures);
                            None
                        }
                    }
                } else {
                    None
                };
                if let Some(s) = sink {
                    if have_frame {
                        s.span(cycle, Stage::Perception);
                    }
                }
                // The cycle event carries the raw perception output —
                // before any degradation hold substitutes a synthetic
                // measurement — next to the ground truth. The
                // stream-fed tuner reads its reward from exactly this
                // field when the delta is published at the top of the
                // next cycle.
                if let Some(d) = open_delta.as_mut() {
                    d.y_l_measured = raw_y_l;
                    d.y_l_true = Some(vehicle.true_y_l());
                }
                if let Some(f) = fitter.as_mut() {
                    f.record(raw_y_l, vehicle.true_y_l());
                }
                let y_l = match policy.as_mut() {
                    Some(p) => {
                        // The coast context: the command actuated over
                        // the elapsed period, the (design-quantized)
                        // speed the loop is scheduled for, and the
                        // gyro — a separate device, live through camera
                        // outages.
                        let coast_input = CoastInput {
                            steering: active_cmd,
                            yaw_rate: vehicle.state().r,
                            speed_kmph: design_speed,
                            h_ms: controller_cfg.h_ms,
                        };
                        let obs = p.observe_with(raw_y_l, &coast_input);
                        if obs.held {
                            tally.incr(Counter::MeasurementHolds);
                            if let Some(s) = sink {
                                s.instant(cycle, "measurement_hold", None);
                            }
                            if let Some(d) = open_delta.as_mut() {
                                d.labels.push("measurement_hold".to_string());
                            }
                        }
                        if obs.coasted {
                            tally.incr(Counter::ObserverCoasts);
                            if let Some(s) = sink {
                                s.instant(cycle, "observer_coast", None);
                            }
                            if let Some(d) = open_delta.as_mut() {
                                d.labels.push("observer_coast".to_string());
                            }
                        }
                        if obs.reacquired {
                            tally.incr(Counter::ObserverReacquisitions);
                            if let Some(s) = sink {
                                s.instant(cycle, "observer_reacquire", None);
                            }
                            if let Some(d) = open_delta.as_mut() {
                                d.labels.push("observer_reacquire".to_string());
                            }
                        }
                        if obs.entered {
                            tally.incr(Counter::DegradedEntries);
                            if let Some(s) = sink {
                                s.instant(cycle, "degraded_enter", None);
                            }
                            if let Some(d) = open_delta.as_mut() {
                                d.labels.push("degraded_enter".to_string());
                            }
                        }
                        if obs.exited {
                            tally.incr(Counter::DegradedExits);
                            if let Some(s) = sink {
                                s.instant(cycle, "degraded_exit", None);
                            }
                            if let Some(d) = open_delta.as_mut() {
                                d.labels.push("degraded_exit".to_string());
                            }
                        }
                        obs.y_l
                    }
                    None => raw_y_l,
                };
                // On blind cycles (`y_l == None`) the controller coasts:
                // the LQR keeps acting on the open-loop observer
                // estimate, which completes any in-flight lateral
                // correction and then decays to near-zero steering —
                // the safest blind behavior (an explicit zero-steering
                // override would freeze a mid-correction heading error
                // and integrate it into a departure over a long outage).
                let u = clock.timed(Stage::Control, || {
                    controller.step(&Measurement { y_l, yaw_rate: vehicle.state().r })
                });
                if let Some(s) = sink {
                    s.span(cycle, Stage::Control);
                    // The command's actuation slot belongs to this cycle
                    // in virtual time, though it takes effect τ later.
                    s.span(cycle, Stage::Actuation);
                }
                if faults.extra_delay_ms > 0.0 {
                    tally.incr(Counter::DeadlineOverruns);
                }
                pending.push((t_ms + controller_cfg.tau_ms + faults.extra_delay_ms, u));
                if config.record_trace {
                    trace.push(TraceSample {
                        t_ms,
                        y_l_measured: y_l,
                        y_l_true: vehicle.true_y_l(),
                        steering: u,
                        isp: isp.config(),
                        roi: knobs.roi,
                        vx: vehicle.state().vx,
                        sector: vehicle.sector_index(),
                    });
                }

                frame_index += 1;
                next_sample_ms = t_ms + controller_cfg.h_ms;
            }

            // Actuate the newest command whose activation time passed,
            // then advance physics. Timed as the actuation stage; this
            // runs once per 5 ms physics step, so its count exceeds the
            // cycle count.
            let sector = clock.timed(Stage::Actuation, || {
                while let Some(&(act_t, cmd)) = pending.first() {
                    if act_t <= t_ms + 1e-9 {
                        active_cmd = cmd;
                        pending.remove(0);
                    } else {
                        break;
                    }
                }
                let sector = vehicle.sector_index();
                vehicle.step(active_cmd);
                qoc.record(sector, vehicle.true_y_l());
                sector
            });
            t_ms += dt_ms;

            if vehicle.departed() {
                qoc.mark_crashed(sector);
                crashed = true;
                crash_sector = Some(sector);
                break;
            }
        }

        // Final flush: the last cycle's delta (including the trailing
        // physics-step Actuation recordings) reaches the subscribers,
        // the flight recorder, and the tuner's open reward window
        // before that window is committed below.
        if let Some(delta) = open_delta.take() {
            publish_delta(
                delta,
                &clock,
                &tally,
                &mut counter_base,
                bus,
                flight,
                tuner.as_mut(),
                tuner_sub.as_ref(),
            );
        }

        HilResult {
            qoc,
            crashed,
            crash_sector,
            time_s: vehicle.time_s(),
            samples: tally.get(Counter::Cycles),
            perception_failures: tally.get(Counter::PerceptionFailures),
            reconfigurations: tally.get(Counter::KnobReconfigurations),
            misidentifications: tally.get(Counter::Misidentifications),
            frame_drops: tally.get(Counter::FrameDrops),
            faulted_cycles: tally.get(Counter::FaultsInjected),
            degraded_samples: tally.get(Counter::DegradedCycles),
            degraded_entries: tally.get(Counter::DegradedEntries),
            measurement_holds: tally.get(Counter::MeasurementHolds),
            observer_coasts: tally.get(Counter::ObserverCoasts),
            observer_reacquisitions: tally.get(Counter::ObserverReacquisitions),
            render_errors: tally.get(Counter::RenderErrors),
            tuner_decisions: tally.get(Counter::TunerDecisions),
            tuner_explorations: tally.get(Counter::TunerExplorations),
            tuner_fallbacks: tally.get(Counter::TunerFallbacks),
            knob_store: tuner.map(|mut t| {
                t.flush();
                t.into_store()
            }),
            error_fit: fitter,
            trace,
        }
    }
}

/// Preview distance of the oracle situation source (m) — the middle of
/// the perception ROIs, i.e. what the camera actually looks at.
pub const ORACLE_PREVIEW_M: f64 = 12.0;

/// The knob policy of each case (Table V).
pub fn knobs_for_case(case: Case, estimate: &SituationFeatures, table: &KnobTable) -> KnobTuning {
    match case {
        Case::Case1 => KnobTuning::conservative(),
        Case::Case2 => KnobTuning::new(
            IspConfig::S0,
            coarse_roi_for(estimate.layout),
            speed_for(estimate.layout),
        ),
        Case::Case3 => KnobTuning::new(
            IspConfig::S0,
            fine_roi_for(estimate.layout, estimate.lane_form),
            speed_for(estimate.layout),
        ),
        Case::Case4 | Case::VariableInvocation => table.lookup(estimate),
    }
}

/// Run-local event accounting: the single source of truth for the
/// counters reported in [`HilResult`], mirrored into the shared
/// telemetry registry when one is attached. (Previously `run()` kept
/// ad-hoc local integers *and* conditionally incremented the registry,
/// and the two bookkeeping paths could drift.)
struct Tally<'a> {
    local: Metrics,
    shared: Option<&'a Metrics>,
}

impl Tally<'_> {
    fn incr(&self, counter: Counter) {
        self.local.incr(counter);
        if let Some(m) = self.shared {
            m.incr(counter);
        }
    }

    fn get(&self, counter: Counter) -> u64 {
        self.local.counter(counter)
    }
}

/// Stage timing shared between the telemetry registry and the per-cycle
/// stream: each stage is measured once and the same nanosecond
/// observation is written to both sides, which is what makes a folded
/// stream byte-identical to the end-of-run registry snapshot.
struct StageClock<'a> {
    metrics: Option<&'a Metrics>,
    /// Observations since the last cycle delta was sealed. Collected
    /// only while a stream or flight consumer is attached (nothing
    /// drains it otherwise).
    probe: RefCell<Vec<(Stage, u64)>>,
    probing: bool,
}

impl StageClock<'_> {
    /// Runs `work` timed against `stage` when telemetry is attached, or
    /// plainly otherwise.
    fn timed<T>(&self, stage: Stage, work: impl FnOnce() -> T) -> T {
        let Some(m) = self.metrics else { return work() };
        let started = std::time::Instant::now();
        let out = work();
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        m.record_ns(stage, ns);
        if self.probing {
            self.probe.borrow_mut().push((stage, ns));
        }
        out
    }
}

/// Seals one cycle's delta — the stage observations probed since the
/// previous seal plus the counter increments against `counter_base` —
/// and hands it to the stream subscribers, the flight recorder, and the
/// stream-fed tuner's reward window.
#[allow(clippy::too_many_arguments)]
fn publish_delta(
    mut delta: CycleDelta,
    clock: &StageClock<'_>,
    tally: &Tally<'_>,
    counter_base: &mut [u64],
    bus: Option<&TelemetryBus>,
    flight: Option<&FlightRecorder>,
    tuner: Option<&mut KnobTuner>,
    tuner_sub: Option<&Subscription>,
) {
    let picks = std::mem::take(&mut *clock.probe.borrow_mut());
    for stage in Stage::ALL {
        let list: Vec<u64> = picks.iter().filter(|(s, _)| *s == stage).map(|&(_, ns)| ns).collect();
        if !list.is_empty() {
            delta.samples.push((stage.name().to_string(), list));
        }
    }
    for (slot, counter) in counter_base.iter_mut().zip(Counter::ALL) {
        let now = tally.get(counter);
        if now > *slot {
            delta.counters.push((counter.name().to_string(), now - *slot));
        }
        *slot = now;
    }
    if let Some(b) = bus {
        b.publish(&delta);
    }
    if let Some(f) = flight {
        f.ingest(&delta);
    }
    if let (Some(t), Some(sub)) = (tuner, tuner_sub) {
        for d in sub.drain() {
            t.record_delta(&d);
        }
    }
}

/// Fetches a controller through the process-wide memoizing design cache
/// (`lkas_control::design::design_controller_cached`), recording the
/// hit/miss counters through the run tally.
fn fetch_controller(tally: &Tally<'_>, cfg: &ControllerConfig) -> Controller {
    let (controller, cache_hit) =
        design_controller_cached(cfg).expect("controller design for built-in knob space");
    tally.incr(if cache_hit {
        Counter::ControllerCacheHits
    } else {
        Counter::ControllerCacheMisses
    });
    controller
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkas_scene::situation::TABLE3_SITUATIONS;

    fn test_camera() -> Camera {
        Camera::new(256, 128, 150.0, 1.3, 6.0_f64.to_radians())
    }

    fn short_run(case: Case, situation_idx: usize, length: f64) -> HilResult {
        let track = Track::for_situation(&TABLE3_SITUATIONS[situation_idx], length);
        let config =
            HilConfig::new(case, SituationSource::Oracle).with_camera(test_camera()).with_seed(42);
        HilSimulator::new(track, config).run()
    }

    #[test]
    fn case1_keeps_lane_on_straight_day() {
        let r = short_run(Case::Case1, 0, 150.0);
        assert!(!r.crashed, "case 1 must survive the benign situation");
        let mae = r.overall_mae().expect("samples recorded");
        assert!(mae < 0.15, "MAE = {mae}");
        assert!(r.samples > 100);
    }

    #[test]
    fn case1_crashes_on_turns() {
        // Fixed ROI 1 on a right turn: the paper's failure case.
        let r = short_run(Case::Case1, 7, 400.0);
        assert!(r.crashed, "case 1 must fail on a right turn");
    }

    #[test]
    fn case2_survives_plain_turns() {
        let r = short_run(Case::Case2, 7, 300.0);
        assert!(!r.crashed, "case 2 handles continuous-lane turns");
    }

    #[test]
    fn case3_survives_dotted_turns() {
        let r = short_run(Case::Case3, 19, 300.0); // left, white dotted, day
        assert!(!r.crashed, "case 3 handles dotted turns");
    }

    #[test]
    fn case4_uses_isp_approximation() {
        let track = Track::for_situation(&TABLE3_SITUATIONS[0], 150.0);
        let config =
            HilConfig::new(Case::Case4, SituationSource::Oracle).with_camera(test_camera());
        let r = HilSimulator::new(track, config).run();
        assert!(!r.crashed);
        // Knob policy check: the Table III tuning for situation 1 is S3.
        let knobs = knobs_for_case(Case::Case4, &TABLE3_SITUATIONS[0], &KnobTable::paper_table3());
        assert_eq!(knobs.isp, IspConfig::S3);
    }

    #[test]
    fn reconfiguration_happens_on_situation_change() {
        // Two-sector track: straight then right turn.
        use lkas_scene::track::Sector;
        let s1 = Sector::for_situation(&TABLE3_SITUATIONS[0], 120.0);
        let s2 = Sector::for_situation(&TABLE3_SITUATIONS[7], 200.0);
        let track = Track::new(vec![s1, s2]);
        let config =
            HilConfig::new(Case::Case2, SituationSource::Oracle).with_camera(test_camera());
        let r = HilSimulator::new(track, config).run();
        assert!(!r.crashed, "case 2 must survive the transition");
        assert!(r.reconfigurations >= 1, "ROI/speed must switch at the sector boundary");
    }

    #[test]
    fn scheme_override_disables_adaptation() {
        // Case 2 with an override that never invokes any classifier
        // keeps the boot knobs forever: no reconfigurations happen and
        // the situation estimate stays stale on a turn it would
        // otherwise identify.
        let track = Track::for_situation(&TABLE3_SITUATIONS[7], 300.0);
        let run = |override_none: bool| {
            let mut config = HilConfig::new(Case::Case2, SituationSource::Oracle)
                .with_camera(test_camera())
                .with_seed(42);
            if override_none {
                config =
                    config.with_scheme_override(crate::invocation::InvocationScheme::EveryFrame(
                        lkas_platform::schedule::ClassifierSet::none(),
                    ));
            }
            HilSimulator::new(track.clone(), config).run()
        };
        let blinded = run(true);
        assert_eq!(blinded.reconfigurations, 0, "no classifier ⇒ no knob switches");
        assert!(blinded.misidentifications > 0, "estimate must go stale on the turn");
        let seeing = run(false);
        assert!(seeing.reconfigurations >= 1, "the un-overridden case adapts");
    }

    #[test]
    fn results_are_deterministic() {
        let a = short_run(Case::Case3, 0, 120.0);
        let b = short_run(Case::Case3, 0, 120.0);
        assert_eq!(a.overall_mae(), b.overall_mae());
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn fault_free_runs_report_zero_fault_counters() {
        let r = short_run(Case::Case3, 0, 120.0);
        assert_eq!(r.frame_drops, 0);
        assert_eq!(r.faulted_cycles, 0);
        assert_eq!(r.degraded_samples, 0);
        assert_eq!(r.degraded_entries, 0);
        assert_eq!(r.measurement_holds, 0);
        assert_eq!(r.observer_coasts, 0);
        assert_eq!(r.observer_reacquisitions, 0);
        assert_eq!(r.render_errors, 0);
        assert!(r.error_fit.is_none(), "no moments without error_fit");
    }

    #[test]
    fn invalid_camera_is_counted_not_fatal() {
        // A camera that only a deserialized config could produce (the
        // constructor panics on it): the negative focal length still
        // rectifies (mirrored homography), but every cycle's render is
        // rejected, so the loop coasts frameless instead of aborting and
        // the rejections are reported.
        let camera: Camera = serde_json::from_str(
            r#"{"width":256,"height":128,"focal":-150.0,"cu":128.0,"cv":64.0,
                "height_m":1.3,"pitch":0.1}"#,
        )
        .unwrap();
        let track = Track::for_situation(&TABLE3_SITUATIONS[0], 60.0);
        let metrics = Arc::new(Metrics::new());
        let config = HilConfig::new(Case::Case1, SituationSource::Oracle)
            .with_camera(camera)
            .with_max_time(20.0)
            .with_metrics(Arc::clone(&metrics));
        let r = HilSimulator::new(track, config).run();
        assert!(r.samples > 0);
        assert_eq!(r.render_errors, r.samples, "every cycle's render must be rejected");
        assert_eq!(r.perception_failures, 0, "perception never ran on a frameless cycle");
        assert_eq!(metrics.snapshot().counter("render_errors"), Some(r.samples));
    }

    #[test]
    fn tile_threads_do_not_change_the_trajectory() {
        // The tiled ISP stages are byte-identical across thread counts,
        // so the whole closed-loop trajectory is too.
        let run = |threads: usize| {
            let track = Track::for_situation(&TABLE3_SITUATIONS[7], 250.0);
            let config = HilConfig::new(Case::Case3, SituationSource::Oracle)
                .with_camera(test_camera())
                .with_seed(42)
                .with_tile_threads(threads);
            HilSimulator::new(track, config).run()
        };
        let serial = run(1);
        let tiled = run(4);
        assert_eq!(serial.overall_mae(), tiled.overall_mae());
        assert_eq!(serial.samples, tiled.samples);
        assert_eq!(serial.crashed, tiled.crashed);
    }

    #[test]
    fn tuned_runs_are_invariant_across_tile_threads() {
        // The online tuner consumes only the (deterministic) closed-loop
        // measurements, so its decision stream — and therefore the whole
        // tuned trajectory — must not depend on how many worker threads
        // the tiled ISP stages use.
        let run = |threads: usize| {
            let track = Track::for_situation(&TABLE3_SITUATIONS[6], 180.0);
            let config = HilConfig::new(Case::Case4, SituationSource::Oracle)
                .with_camera(test_camera())
                .with_seed(42)
                .with_sensor(SensorConfig { read_noise: 0.05, shot_noise: 0.06, gain: 1.0 })
                .with_initial_estimate(TABLE3_SITUATIONS[6])
                .with_tuner(TunerConfig::new().with_seed(42))
                .with_tile_threads(threads);
            HilSimulator::new(track, config).run()
        };
        let serial = run(1);
        let tiled = run(4);
        assert_eq!(serial.overall_mae(), tiled.overall_mae());
        assert_eq!(serial.samples, tiled.samples);
        assert_eq!(serial.tuner_decisions, tiled.tuner_decisions);
        assert_eq!(serial.tuner_explorations, tiled.tuner_explorations);
        assert_eq!(serial.reconfigurations, tiled.reconfigurations);
        let (a, b) = (serial.knob_store.unwrap(), tiled.knob_store.unwrap());
        assert!(serial.tuner_decisions > 0, "the run must be long enough to commit windows");
        assert_eq!(a.version(), b.version(), "learned stores must match");
        assert_eq!(a, b);
    }

    #[test]
    fn faulted_runs_replay_identically() {
        let mk = || {
            let plan = Arc::new(
                FaultPlan::named("storm", 9).hot_pixels(20, 40, 0.05).exposure_glitch(80, 20, 2.0),
            );
            let track = Track::for_situation(&TABLE3_SITUATIONS[0], 150.0);
            let config = HilConfig::new(Case::Case3, SituationSource::Oracle)
                .with_camera(test_camera())
                .with_seed(42)
                .with_fault_plan(plan);
            HilSimulator::new(track, config).run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.overall_mae(), b.overall_mae());
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.faulted_cycles, b.faulted_cycles);
        assert_eq!(a.perception_failures, b.perception_failures);
        assert!(a.faulted_cycles >= 60, "both windows must land inside the run");
    }

    #[test]
    fn short_drop_burst_is_bridged_by_holds_without_safe_mode() {
        // A 3-frame drop: within the miss budget (held) and below the
        // safe-mode threshold (no degraded entry).
        let plan = Arc::new(FaultPlan::named("blip", 1).drop_burst(40, 3));
        let track = Track::for_situation(&TABLE3_SITUATIONS[0], 150.0);
        let config = HilConfig::new(Case::Case3, SituationSource::Oracle)
            .with_camera(test_camera())
            .with_seed(42)
            .with_fault_plan(plan)
            .with_degradation(DegradationConfig::default());
        let r = HilSimulator::new(track, config).run();
        assert!(!r.crashed);
        assert_eq!(r.frame_drops, 3);
        assert_eq!(r.measurement_holds, 3);
        assert_eq!(r.degraded_entries, 0);
        assert_eq!(r.degraded_samples, 0);
    }

    #[test]
    fn forced_misprediction_reconfigures_and_is_counted() {
        // Force a right-turn estimate for 10 frames on a straight: the
        // knobs chase the lie (and come back), every lied frame counts
        // as a misidentification.
        let wrong = TABLE3_SITUATIONS[7];
        let plan = Arc::new(FaultPlan::named("liar", 1).force_situation(30, 10, wrong));
        let track = Track::for_situation(&TABLE3_SITUATIONS[0], 200.0);
        let config = HilConfig::new(Case::Case3, SituationSource::Oracle)
            .with_camera(test_camera())
            .with_seed(42)
            .with_fault_plan(plan);
        let r = HilSimulator::new(track, config).run();
        assert!(!r.crashed, "a brief wrong tuning on a straight is survivable");
        assert!(r.misidentifications >= 10, "misidentifications = {}", r.misidentifications);
        assert!(r.reconfigurations >= 2, "into the wrong tuning and back");
        assert!(r.faulted_cycles >= 10);
    }

    #[test]
    fn degradation_policy_survives_frame_drop_burst_that_crashes_unhardened() {
        // The acceptance scenario: a frame-drop burst starts while the
        // approach straight still fills the camera preview, so the
        // unhardened Case 3 loop never learns about the upcoming right
        // turn — it carries its stale straight knobs (50 km/h) blind
        // into the curve and departs about 1.6 s later (22 m of blind
        // arc exhausts the departure limit at R = 110 m). The hardened
        // loop exhausts its miss budget early on the straight, falls
        // back to safe mode (30 km/h), re-acquires before the curve,
        // recenters, and takes the turn sighted.
        use lkas_scene::track::Sector;
        let plan = Arc::new(FaultPlan::named("blindfold", 7).drop_burst(150, 500));
        let run = |hardened: bool| {
            let track = Track::new(vec![
                Sector::for_situation(&TABLE3_SITUATIONS[0], 300.0),
                Sector::for_situation(&TABLE3_SITUATIONS[7], 140.0),
                Sector::for_situation(&TABLE3_SITUATIONS[0], 80.0),
            ]);
            let mut config = HilConfig::new(Case::Case3, SituationSource::Oracle)
                .with_camera(test_camera())
                .with_seed(7)
                .with_fault_plan(Arc::clone(&plan));
            if hardened {
                config = config.with_degradation(DegradationConfig::default());
            }
            HilSimulator::new(track, config).run()
        };
        let unhardened = run(false);
        assert!(unhardened.crashed, "blind turn entry at 50 km/h must depart");
        let hardened = run(true);
        assert!(!hardened.crashed, "safe mode must survive the same burst");
        assert!(hardened.degraded_entries >= 1, "the burst must trip safe mode");
        assert!(hardened.degraded_samples > 0);
        assert!(hardened.measurement_holds >= 1, "the first misses are bridged");
        assert!(hardened.frame_drops > 0);
    }

    #[test]
    fn observer_coast_outlasts_hold_and_extrapolate_through_a_blind_burst() {
        use crate::degrade::CoastPolicy;
        // The Case-3 blind-burst acceptance scenario: a 10 s frame-drop
        // burst on a straight at 50 km/h. The hold arm bridges 4 cycles,
        // then goes honestly blind: the controller coasts open-loop,
        // the estimate drifts from the noise-fed state it froze at, and
        // re-acquisition finds the vehicle so far displaced that the
        // recovery transient departs the lane. The observer arm coasts
        // on the gyro-corrected Kalman estimate, keeps the controller's
        // own observer measurement-fed throughout, re-acquires through
        // the innovation gate, and finishes the track.
        let run = |coast: CoastPolicy| {
            let plan = Arc::new(FaultPlan::named("blind-burst", 7).drop_burst(200, 400));
            let track = Track::for_situation(&TABLE3_SITUATIONS[0], 600.0);
            let config = HilConfig::new(Case::Case3, SituationSource::Oracle)
                .with_camera(test_camera())
                .with_seed(7)
                .with_fault_plan(plan)
                .with_degradation(DegradationConfig::default().with_coast(coast));
            HilSimulator::new(track, config).run()
        };
        let hold = run(CoastPolicy::HoldAndExtrapolate);
        let observer = run(CoastPolicy::ObserverCoast);
        // The gated acceptance criterion: the observer coast survives
        // the burst at least as long as hold-and-extrapolate (here:
        // strictly longer — it does not crash at all).
        assert!(hold.crashed, "the hold arm must depart during/after the burst");
        assert!(!observer.crashed, "the observer arm must survive the same burst");
        assert!(
            observer.time_s >= hold.time_s,
            "observer survival {:.2}s must be at least the hold arm's {:.2}s",
            observer.time_s,
            hold.time_s
        );
        assert!(observer.observer_coasts > 0, "past-budget misses must be coasted");
        assert!(observer.observer_reacquisitions >= 1, "the burst end must re-acquire");
        assert_eq!(hold.observer_coasts, 0, "the legacy arm never coasts");
        // Both arms bridge the first misses identically.
        assert!(hold.measurement_holds >= 4 && observer.measurement_holds >= 4);
    }

    #[test]
    fn error_fit_recovers_perception_moments() {
        let track = Track::for_situation(&TABLE3_SITUATIONS[0], 150.0);
        let config = HilConfig::new(Case::Case3, SituationSource::Oracle)
            .with_camera(test_camera())
            .with_seed(42)
            .with_error_fit(true);
        let r = HilSimulator::new(track, config).run();
        let profile = r.error_profile().expect("error_fit must produce a profile");
        // The perception stage is noisy but roughly unbiased on the
        // benign straight, and it rarely misses.
        assert!(profile.noise_std > 0.0 && profile.noise_std < 0.5, "σ = {}", profile.noise_std);
        assert!(profile.bias.abs() < 0.2, "bias = {}", profile.bias);
        assert!(profile.miss_rate < 0.1, "miss rate = {}", profile.miss_rate);
        // Deterministic: the same run fits the same profile.
        let again = HilSimulator::new(
            Track::for_situation(&TABLE3_SITUATIONS[0], 150.0),
            HilConfig::new(Case::Case3, SituationSource::Oracle)
                .with_camera(test_camera())
                .with_seed(42)
                .with_error_fit(true),
        )
        .run();
        assert_eq!(again.error_fit, r.error_fit);
        assert_eq!(again.error_profile(), r.error_profile());
    }

    #[test]
    fn metrics_capture_stage_timings_and_counters() {
        use lkas_scene::track::Sector;
        // Straight → right turn so knob reconfigurations actually fire.
        let s1 = Sector::for_situation(&TABLE3_SITUATIONS[0], 120.0);
        let s2 = Sector::for_situation(&TABLE3_SITUATIONS[7], 200.0);
        let track = Track::new(vec![s1, s2]);
        let metrics = Arc::new(Metrics::new());
        let config = HilConfig::new(Case::Case4, SituationSource::Oracle)
            .with_camera(test_camera())
            .with_seed(42)
            .with_metrics(Arc::clone(&metrics));
        let result = HilSimulator::new(track, config).run();
        assert!(!result.crashed);

        let snap = metrics.snapshot();
        assert_eq!(snap.counter("cycles"), Some(result.samples));
        // Every pipeline stage ran once per cycle.
        for stage in ["render", "sensor", "isp", "classifier", "perception"] {
            let timing = snap.stage(stage).unwrap();
            assert_eq!(timing.count, result.samples, "{stage}");
            assert!(timing.total_ms > 0.0, "{stage} must accumulate time");
            assert!(timing.mean_us > 0.0 && timing.max_us >= timing.mean_us, "{stage}");
        }
        // Control is timed at least once per cycle (steps) plus design
        // fetches on reconfiguration.
        assert!(snap.stage("control").unwrap().count >= result.samples);
        // Actuation is timed once per 5 ms physics step, so it records
        // strictly more often than the control samples.
        let actuation = snap.stage("actuation").unwrap();
        assert!(actuation.count > result.samples, "physics steps outnumber control samples");
        // Percentiles ride along in the v3 snapshot, ordered.
        let render = snap.stage("render").unwrap();
        let (p50, p90, p99) =
            (render.p50_us.unwrap(), render.p90_us.unwrap(), render.p99_us.unwrap());
        assert!(p50 <= p90 && p90 <= p99 && p99 <= render.max_us);
        // The sector transition must show up in the event counters.
        assert!(snap.counter("situation_switches").unwrap() >= 1);
        assert!(
            snap.counter("isp_reconfigurations").unwrap()
                + snap.counter("perception_reconfigurations").unwrap()
                + snap.counter("control_reconfigurations").unwrap()
                >= 1,
            "the sector boundary must reconfigure at least one knob group"
        );
        // Every design lookup goes through the memoizing cache.
        assert!(
            snap.counter("controller_cache_hits").unwrap()
                + snap.counter("controller_cache_misses").unwrap()
                >= 1
        );
    }

    #[test]
    fn folded_stream_matches_the_registry_snapshot() {
        use lkas_runtime::{fold, TelemetryBus};
        use lkas_scene::track::Sector;
        // Straight → right turn so labels and reconfiguration counters
        // actually flow through the stream.
        let s1 = Sector::for_situation(&TABLE3_SITUATIONS[0], 120.0);
        let s2 = Sector::for_situation(&TABLE3_SITUATIONS[7], 200.0);
        let track = Track::new(vec![s1, s2]);
        let metrics = Arc::new(Metrics::new());
        let bus = Arc::new(TelemetryBus::new(1 << 14));
        let sub = bus.subscribe();
        let config = HilConfig::new(Case::Case4, SituationSource::Oracle)
            .with_camera(test_camera())
            .with_seed(42)
            .with_metrics(Arc::clone(&metrics))
            .with_stream(Arc::clone(&bus));
        let result = HilSimulator::new(track, config).run();
        let deltas = sub.drain();
        assert_eq!(deltas.len() as u64, result.samples, "one delta per control sample");
        assert_eq!(bus.dropped(), 0, "the ring must hold the whole run");
        for d in &deltas {
            assert_eq!(d.ts_us, d.cycle * lkas_runtime::CYCLE_TICKS, "virtual timestamps");
        }
        assert!(deltas.iter().all(|d| d.y_l_true.is_some()));
        assert!(deltas.iter().any(|d| d.y_l_measured.is_some()));
        assert!(deltas.iter().any(|d| d.labels.iter().any(|l| l == "situation_switch")));
        // Replaying the per-cycle deltas into a fresh registry lands on
        // the exact end-of-run snapshot: every stage observation and
        // counter increment reached the stream, and nothing else
        // touched the registry.
        assert_eq!(fold(deltas.iter()).snapshot(), metrics.snapshot());
    }

    #[test]
    fn stream_is_identical_across_tile_threads_without_metrics() {
        use lkas_runtime::TelemetryBus;
        // Wall-clock stage samples only ride along when a registry is
        // attached, so a metrics-free stream is a pure function of the
        // (thread-count-invariant) trajectory.
        let run = |threads: usize| {
            let track = Track::for_situation(&TABLE3_SITUATIONS[7], 250.0);
            let bus = Arc::new(TelemetryBus::new(1 << 14));
            let sub = bus.subscribe();
            let config = HilConfig::new(Case::Case3, SituationSource::Oracle)
                .with_camera(test_camera())
                .with_seed(42)
                .with_tile_threads(threads)
                .with_stream(bus);
            HilSimulator::new(track, config).run();
            sub.drain()
        };
        let serial = run(1);
        let tiled = run(4);
        assert!(!serial.is_empty());
        assert!(serial.iter().all(|d| d.samples.is_empty()), "no latency samples without metrics");
        assert!(serial.iter().any(|d| !d.labels.is_empty()));
        assert!(serial.iter().any(|d| !d.counters.is_empty()));
        assert_eq!(serial, tiled, "deltas must not depend on the tile-worker count");
    }

    #[test]
    fn external_stream_does_not_perturb_the_tuned_trajectory() {
        use lkas_runtime::TelemetryBus;
        let base = || {
            HilConfig::new(Case::Case4, SituationSource::Oracle)
                .with_camera(test_camera())
                .with_seed(42)
                .with_sensor(SensorConfig { read_noise: 0.05, shot_noise: 0.06, gain: 1.0 })
                .with_initial_estimate(TABLE3_SITUATIONS[6])
                .with_tuner(TunerConfig::new().with_seed(42))
        };
        let track = || Track::for_situation(&TABLE3_SITUATIONS[6], 180.0);
        let private = HilSimulator::new(track(), base()).run();
        // A deliberately tiny ring with a subscriber that never drains:
        // the lazy subscriber overflows and loses old frames, but the
        // tuner rides its own per-cycle subscription and the trajectory
        // is untouched — backpressure never reaches the control loop.
        let bus = Arc::new(TelemetryBus::new(2));
        let lazy = bus.subscribe();
        let external = HilSimulator::new(track(), base().with_stream(Arc::clone(&bus))).run();
        assert!(lazy.dropped() > 0, "the tiny ring must overflow the lazy subscriber");
        assert_eq!(bus.dropped(), lazy.dropped());
        assert_eq!(private.overall_mae(), external.overall_mae());
        assert_eq!(private.tuner_decisions, external.tuner_decisions);
        assert_eq!(private.knob_store.unwrap(), external.knob_store.unwrap());
    }

    #[test]
    fn flight_recorder_dumps_on_safe_mode_entry() {
        use lkas_runtime::{FlightDump, FlightRecorder};
        use lkas_scene::track::Sector;
        let path =
            std::env::temp_dir().join(format!("lkas-hil-flight-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // The blindfold scenario from the degradation acceptance test:
        // a long frame-drop burst trips safe mode mid-straight.
        let plan = Arc::new(FaultPlan::named("blindfold", 7).drop_burst(150, 500));
        let track = Track::new(vec![
            Sector::for_situation(&TABLE3_SITUATIONS[0], 300.0),
            Sector::for_situation(&TABLE3_SITUATIONS[7], 140.0),
            Sector::for_situation(&TABLE3_SITUATIONS[0], 80.0),
        ]);
        let recorder = Arc::new(FlightRecorder::new(64).with_auto_dump(path.clone()));
        let config = HilConfig::new(Case::Case3, SituationSource::Oracle)
            .with_camera(test_camera())
            .with_seed(7)
            .with_fault_plan(plan)
            .with_degradation(DegradationConfig::default())
            .with_flight_recorder(Arc::clone(&recorder));
        let r = HilSimulator::new(track, config).run();
        assert!(r.degraded_entries >= 1, "the burst must trip safe mode");
        assert!(recorder.dumps() >= 1, "safe-mode entry must auto-dump the ring");
        let dump: FlightDump =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(dump.reason, "degraded_enter");
        assert!(dump.deltas.iter().any(|d| d.labels.iter().any(|l| l == "degraded_enter")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_sink_records_spans_and_events() {
        use lkas_runtime::TraceRecorder;
        use lkas_scene::track::Sector;
        let s1 = Sector::for_situation(&TABLE3_SITUATIONS[0], 120.0);
        let s2 = Sector::for_situation(&TABLE3_SITUATIONS[7], 200.0);
        let track = Track::new(vec![s1, s2]);
        let recorder = TraceRecorder::new();
        let config = HilConfig::new(Case::Case2, SituationSource::Oracle)
            .with_camera(test_camera())
            .with_seed(42)
            .with_trace_sink(recorder.sink(1, "trace-test"));
        let result = HilSimulator::new(track, config).run();
        assert!(!result.crashed);

        let json = recorder.chrome_trace_json();
        // Stage spans of every pipeline stage made it into the export.
        for stage in ["render", "sensor", "isp", "classifier", "perception", "control", "actuation"]
        {
            assert!(json.contains(&format!("\"name\":\"{stage}\"")), "missing {stage} span");
        }
        // The sector boundary shows up as a situation switch plus at
        // least one knob reconfiguration instant.
        assert!(json.contains("\"name\":\"situation_switch\""));
        assert!(json.contains("reconfig:"), "knob reconfiguration must be traced");
        assert!(json.contains("\"name\":\"run_start\""));
        // Deterministic replay: the same run renders identical bytes.
        let recorder2 = TraceRecorder::new();
        let s1 = Sector::for_situation(&TABLE3_SITUATIONS[0], 120.0);
        let s2 = Sector::for_situation(&TABLE3_SITUATIONS[7], 200.0);
        let config = HilConfig::new(Case::Case2, SituationSource::Oracle)
            .with_camera(test_camera())
            .with_seed(42)
            .with_trace_sink(recorder2.sink(1, "trace-test"));
        HilSimulator::new(Track::new(vec![s1, s2]), config).run();
        assert_eq!(json, recorder2.chrome_trace_json());
    }
}
