//! Steering actuation dynamics.
//!
//! The paper models actuation after an automotive electric power
//! steering system (ref. [18]): the commanded front-wheel angle is
//! tracked through a first-order lag with a slew-rate limit.

use lkas_control::MAX_STEER_RAD;
use serde::{Deserialize, Serialize};

/// A first-order, rate-limited steering actuator.
///
/// # Example
///
/// ```
/// use lkas_vehicle::actuation::SteeringActuator;
///
/// let mut act = SteeringActuator::default();
/// // A step command is tracked gradually, not instantaneously.
/// let first = act.step(0.3, 0.005);
/// assert!(first > 0.0 && first < 0.3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteeringActuator {
    /// First-order time constant (s).
    pub time_constant: f64,
    /// Maximum slew rate (rad/s).
    pub max_rate: f64,
    angle: f64,
}

impl SteeringActuator {
    /// Creates an actuator with the given lag and rate limit.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive.
    pub fn new(time_constant: f64, max_rate: f64) -> Self {
        assert!(time_constant > 0.0 && max_rate > 0.0, "actuator parameters must be positive");
        SteeringActuator { time_constant, max_rate, angle: 0.0 }
    }

    /// Current front-wheel angle (rad).
    pub fn angle(&self) -> f64 {
        self.angle
    }

    /// Resets the wheel to center.
    pub fn reset(&mut self) {
        self.angle = 0.0;
    }

    /// Advances the actuator by `dt` seconds toward `command` (rad) and
    /// returns the achieved angle.
    pub fn step(&mut self, command: f64, dt: f64) -> f64 {
        let command = command.clamp(-MAX_STEER_RAD, MAX_STEER_RAD);
        let desired_rate = (command - self.angle) / self.time_constant;
        let rate = desired_rate.clamp(-self.max_rate, self.max_rate);
        self.angle = (self.angle + rate * dt).clamp(-MAX_STEER_RAD, MAX_STEER_RAD);
        self.angle
    }
}

impl Default for SteeringActuator {
    fn default() -> Self {
        // ~50 ms lag, 0.8 rad/s slew — typical EPS characteristics.
        SteeringActuator::new(0.05, 0.8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_command() {
        let mut act = SteeringActuator::default();
        for _ in 0..400 {
            act.step(0.2, 0.005);
        }
        assert!((act.angle() - 0.2).abs() < 1e-3);
    }

    #[test]
    fn rate_limit_respected() {
        let mut act = SteeringActuator::default();
        let before = act.angle();
        let after = act.step(0.5, 0.005);
        assert!((after - before).abs() <= 0.8 * 0.005 + 1e-12);
    }

    #[test]
    fn saturates_at_max_steer() {
        let mut act = SteeringActuator::default();
        for _ in 0..2000 {
            act.step(10.0, 0.005);
        }
        assert!(act.angle() <= MAX_STEER_RAD + 1e-12);
    }

    #[test]
    fn reset_centers() {
        let mut act = SteeringActuator::default();
        act.step(0.3, 0.1);
        act.reset();
        assert_eq!(act.angle(), 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_params_panic() {
        let _ = SteeringActuator::new(0.0, 1.0);
    }
}
