#!/bin/bash
# Regenerates every table and figure of the paper plus the ablation
# studies. On a many-core machine drop the --quick/--half-res flags and
# raise --seeds. Outputs: stdout tables per harness, JSON in results/,
# trained artifacts in artifacts/.
set -e
cd "$(dirname "$0")"
cargo run --release -p lkas-bench --bin table5_cases
cargo run --release -p lkas-bench --bin table2_runtimes
cargo run --release -p lkas-bench --bin fig1_tradeoff
cargo run --release -p lkas-bench --bin table4_classifiers
cargo run --release -p lkas-bench --bin table3_characterization
cargo run --release -p lkas-bench --bin fig6_static -- --metrics-out artifacts/telemetry_fig6_static.json
cargo run --release -p lkas-bench --bin fig8_dynamic -- --seeds 3 --metrics-out artifacts/telemetry_fig8_dynamic.json --trace-out artifacts/fig8_dynamic.trace.json
cargo run --release -p lkas-bench --bin lqg_study
cargo run --release -p lkas-bench --bin ablation_isp
cargo run --release -p lkas-bench --bin ablation_invocation
cargo run --release -p lkas-bench --bin robustness_campaign -- --seed 7 --metrics-out artifacts/telemetry_robustness.json
