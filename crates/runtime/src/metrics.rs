//! Lock-free telemetry: per-stage latency histograms and event
//! counters, exportable as a JSON artifact.

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Identifies the telemetry JSON layout written by
/// [`Metrics::write_json`].
///
/// v3 replaces the mean/max-only stage accumulators with log2 latency
/// histograms: every stage entry now carries `p50_us`/`p90_us`/`p99_us`
/// percentile estimates alongside the v1/v2 fields, and the `actuation`
/// stage joins the breakdown. v2 extended v1 with the fault-injection
/// and graceful-degradation counters (`faults_injected` …
/// `degraded_cycles`). The layout is strictly additive across versions,
/// so v1/v2 documents still deserialize into [`MetricsSnapshot`] (the
/// percentile fields read back as `None`) — readers should accept all
/// three tags (see [`MetricsSnapshot::schema_is_supported`]).
pub const TELEMETRY_SCHEMA: &str = "lkas-telemetry-v3";

/// The mean/max-only schema with fault counters, still accepted on read.
pub const TELEMETRY_SCHEMA_V2: &str = "lkas-telemetry-v2";

/// The original telemetry schema tag, still accepted on read.
pub const TELEMETRY_SCHEMA_V1: &str = "lkas-telemetry-v1";

/// The pipeline stages of one closed-loop cycle, mirroring the paper's
/// Table II runtime breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Scene rendering (simulation-only cost; the paper's camera feed).
    Render,
    /// Sensor capture: exposure, noise, Bayer sampling.
    Sensor,
    /// The configurable ISP pipeline.
    Isp,
    /// Situation-classifier invocation (road / lane / scene heads).
    Classifier,
    /// Lane perception (rectify, binarize, sliding-window fit).
    Perception,
    /// Controller design lookups plus the control-law step.
    Control,
    /// Steering-command actuation: pending-command activation plus the
    /// vehicle physics step (recorded once per physics step, so its
    /// count exceeds `cycles`).
    Actuation,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Render,
        Stage::Sensor,
        Stage::Isp,
        Stage::Classifier,
        Stage::Perception,
        Stage::Control,
        Stage::Actuation,
    ];

    /// The stage's snake_case name as written to JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Render => "render",
            Stage::Sensor => "sensor",
            Stage::Isp => "isp",
            Stage::Classifier => "classifier",
            Stage::Perception => "perception",
            Stage::Control => "control",
            Stage::Actuation => "actuation",
        }
    }

    /// Looks up a stage by its snake_case name.
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.name() == name)
    }
}

/// Monotonic event counters tracked alongside stage timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Closed-loop cycles simulated.
    Cycles,
    /// Perception returned no usable lateral estimate.
    PerceptionFailures,
    /// The situation estimate changed between cycles.
    SituationSwitches,
    /// ISP knob reconfigurations applied.
    IspReconfigurations,
    /// Perception/ROI knob reconfigurations applied.
    PerceptionReconfigurations,
    /// Controller (gain/period) reconfigurations applied.
    ControlReconfigurations,
    /// Controller designs served from the memoizing cache.
    ControllerCacheHits,
    /// Controller designs derived from scratch.
    ControllerCacheMisses,
    /// Control samples whose situation estimate disagreed with ground
    /// truth.
    Misidentifications,
    /// Knob-tuning changes of any group (the aggregate the HiL result
    /// reports as `reconfigurations`).
    KnobReconfigurations,
    /// Cycles in which at least one injected fault was active
    /// (telemetry-v2, `lkas-faults`).
    FaultsInjected,
    /// Camera frames dropped by an injected fault.
    FrameDrops,
    /// Cycles whose situation estimate was overridden by an injected
    /// classifier misprediction.
    ForcedMispredictions,
    /// Cycles whose actuation was delayed past the designed `τ` by an
    /// injected perception timeout.
    DeadlineOverruns,
    /// Cycles driven with a stuck or lagged steering actuator fault.
    ActuationFaults,
    /// Perception misses bridged by the degradation policy's
    /// hold-and-extrapolate.
    MeasurementHolds,
    /// Past-budget misses (or gated glitch frames) bridged by the
    /// degradation policy's Kalman observer coast instead of going
    /// blind.
    ObserverCoasts,
    /// Coast-ending measurements accepted through the degradation
    /// policy's re-acquisition innovation gate.
    ObserverReacquisitions,
    /// Transitions of the degradation policy into the safe fallback
    /// mode.
    DegradedEntries,
    /// Hysteresis exits of the degradation policy back to nominal.
    DegradedExits,
    /// Control samples spent in the degraded (safe fallback) mode.
    DegradedCycles,
    /// Scene-render rejections (an invalid camera surfaced as a typed
    /// `RenderError` instead of a panic); the cycle proceeds frameless,
    /// as with a dropped frame.
    RenderErrors,
    /// Campaign grid candidates evaluated from scratch by the campaign
    /// engine this run.
    CampaignEvaluations,
    /// Campaign grid candidates restored from a checkpoint instead of
    /// re-evaluated.
    CampaignRestored,
    /// Knob decisions taken by the online re-characterization tuner
    /// (one per completed reward window or situation switch).
    TunerDecisions,
    /// Tuner decisions that picked a non-prior arm to gather reward
    /// (unexplored-arm visits plus epsilon-random picks).
    TunerExplorations,
    /// Tuner decisions forced back to the characterized prior tuning
    /// (safe-mode entries and post-degradation resets).
    TunerFallbacks,
    /// Jobs admitted to a fleet daemon's queue.
    FleetJobsAccepted,
    /// Jobs refused by fleet admission control (queue saturated).
    FleetJobsRejected,
    /// Fleet submissions answered from the fingerprint-keyed results
    /// cache without re-simulation.
    FleetCacheHits,
    /// Fleet jobs that missed the results cache and were simulated.
    FleetCacheMisses,
    /// Per-cycle telemetry events evicted from a bounded stream ring
    /// (drop-oldest backpressure on a slow subscriber). Accounted by
    /// the bus/daemon, never by a simulation run's own registry, so a
    /// folded stream stays byte-identical to the run snapshot.
    StreamDropped,
    /// Flight-recorder rings dumped as post-mortem artifacts.
    FlightDumps,
}

impl Counter {
    /// Every counter, in reporting order.
    pub const ALL: [Counter; 33] = [
        Counter::Cycles,
        Counter::PerceptionFailures,
        Counter::SituationSwitches,
        Counter::IspReconfigurations,
        Counter::PerceptionReconfigurations,
        Counter::ControlReconfigurations,
        Counter::ControllerCacheHits,
        Counter::ControllerCacheMisses,
        Counter::Misidentifications,
        Counter::KnobReconfigurations,
        Counter::FaultsInjected,
        Counter::FrameDrops,
        Counter::ForcedMispredictions,
        Counter::DeadlineOverruns,
        Counter::ActuationFaults,
        Counter::MeasurementHolds,
        Counter::ObserverCoasts,
        Counter::ObserverReacquisitions,
        Counter::DegradedEntries,
        Counter::DegradedExits,
        Counter::DegradedCycles,
        Counter::RenderErrors,
        Counter::CampaignEvaluations,
        Counter::CampaignRestored,
        Counter::TunerDecisions,
        Counter::TunerExplorations,
        Counter::TunerFallbacks,
        Counter::FleetJobsAccepted,
        Counter::FleetJobsRejected,
        Counter::FleetCacheHits,
        Counter::FleetCacheMisses,
        Counter::StreamDropped,
        Counter::FlightDumps,
    ];

    /// The counter's snake_case name as written to JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Cycles => "cycles",
            Counter::PerceptionFailures => "perception_failures",
            Counter::SituationSwitches => "situation_switches",
            Counter::IspReconfigurations => "isp_reconfigurations",
            Counter::PerceptionReconfigurations => "perception_reconfigurations",
            Counter::ControlReconfigurations => "control_reconfigurations",
            Counter::ControllerCacheHits => "controller_cache_hits",
            Counter::ControllerCacheMisses => "controller_cache_misses",
            Counter::Misidentifications => "misidentifications",
            Counter::KnobReconfigurations => "knob_reconfigurations",
            Counter::FaultsInjected => "faults_injected",
            Counter::FrameDrops => "frame_drops",
            Counter::ForcedMispredictions => "forced_mispredictions",
            Counter::DeadlineOverruns => "deadline_overruns",
            Counter::ActuationFaults => "actuation_faults",
            Counter::MeasurementHolds => "measurement_holds",
            Counter::ObserverCoasts => "observer_coasts",
            Counter::ObserverReacquisitions => "observer_reacquisitions",
            Counter::DegradedEntries => "degraded_entries",
            Counter::DegradedExits => "degraded_exits",
            Counter::DegradedCycles => "degraded_cycles",
            Counter::RenderErrors => "render_errors",
            Counter::CampaignEvaluations => "campaign_evaluations",
            Counter::CampaignRestored => "campaign_restored",
            Counter::TunerDecisions => "tuner_decisions",
            Counter::TunerExplorations => "tuner_explorations",
            Counter::TunerFallbacks => "tuner_fallbacks",
            Counter::FleetJobsAccepted => "fleet_jobs_accepted",
            Counter::FleetJobsRejected => "fleet_jobs_rejected",
            Counter::FleetCacheHits => "fleet_cache_hits",
            Counter::FleetCacheMisses => "fleet_cache_misses",
            Counter::StreamDropped => "stream_dropped",
            Counter::FlightDumps => "flight_dumps",
        }
    }

    /// Looks up a counter by its snake_case name.
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.iter().copied().find(|c| c.name() == name)
    }
}

/// A thread-safe telemetry registry.
///
/// All recording is relaxed-atomic (per-stage [`LatencyHistogram`]s and
/// counter cells), so one `Metrics` can be shared (via `Arc` or plain
/// reference) across every worker of a parallel sweep and across every
/// stage of a simulation cycle without locking. Registries are also
/// *mergeable* ([`Metrics::merge_from`]): each worker can record into a
/// local registry and fold it into the sweep's shared one, which is
/// what [`crate::Executor::run_with_local`]-based sweeps do.
#[derive(Debug)]
pub struct Metrics {
    stages: [LatencyHistogram; Stage::ALL.len()],
    counters: [AtomicU64; Counter::ALL.len()],
}

// Written out because `[T; N]: Default` stops at N = 32 and the counter
// set has grown past it.
impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            stages: std::array::from_fn(|_| LatencyHistogram::default()),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Starts an RAII timer; the elapsed time is recorded against
    /// `stage` when the returned guard drops.
    pub fn start(&self, stage: Stage) -> StageTimer<'_> {
        StageTimer { metrics: self, stage, started: Instant::now() }
    }

    /// Times `work` against `stage` and returns its result.
    pub fn time<T>(&self, stage: Stage, work: impl FnOnce() -> T) -> T {
        let _timer = self.start(stage);
        work()
    }

    /// Records one observation of `elapsed` for `stage`.
    pub fn record(&self, stage: Stage, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.record_ns(stage, ns);
    }

    /// Records one observation of exactly `ns` nanoseconds for `stage`.
    ///
    /// The telemetry stream carries the same raw values, so recording
    /// the identical `u64` into both the registry and a
    /// [`crate::CycleDelta`] keeps a folded stream byte-identical to
    /// the end-of-run snapshot.
    pub fn record_ns(&self, stage: Stage, ns: u64) {
        self.stages[stage as usize].record_ns(ns);
    }

    /// Adds every observation and counter of `other` into `self`.
    /// Merging per-worker registries into a shared one is equivalent to
    /// having recorded everything into the shared registry directly.
    pub fn merge_from(&self, other: &Metrics) {
        for (mine, theirs) in self.stages.iter().zip(&other.stages) {
            mine.merge_from(theirs);
        }
        for &counter in &Counter::ALL {
            let n = other.counter(counter);
            if n > 0 {
                self.add(counter, n);
            }
        }
    }

    /// A plain copy of one stage's latency histogram.
    pub fn stage_histogram(&self, stage: Stage) -> HistogramSnapshot {
        self.stages[stage as usize].snapshot()
    }

    /// Adds every observation of `snap` into `stage`'s histogram — the
    /// per-stage counterpart of [`Metrics::absorb`], used when applying
    /// sparse telemetry deltas ([`crate::apply_delta`]).
    pub fn merge_stage_snapshot(&self, stage: Stage, snap: &HistogramSnapshot) {
        self.stages[stage as usize].merge_snapshot(snap);
    }

    /// Increments `counter` by one.
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Increments `counter` by `n`.
    pub fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// The current value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy for reporting. (Individual
    /// loads are relaxed; call after the workload quiesces for exact
    /// totals.)
    pub fn snapshot(&self) -> MetricsSnapshot {
        let stages = Stage::ALL
            .iter()
            .map(|&stage| {
                let hist = self.stages[stage as usize].snapshot();
                let count = hist.count();
                StageSnapshot {
                    stage: stage.name().to_string(),
                    count,
                    total_ms: hist.total_ns as f64 / 1e6,
                    mean_us: if count == 0 {
                        0.0
                    } else {
                        hist.total_ns as f64 / count as f64 / 1e3
                    },
                    max_us: hist.max_ns as f64 / 1e3,
                    p50_us: Some(hist.percentile_ns(0.50) as f64 / 1e3),
                    p90_us: Some(hist.percentile_ns(0.90) as f64 / 1e3),
                    p99_us: Some(hist.percentile_ns(0.99) as f64 / 1e3),
                }
            })
            .collect();
        let counters = Counter::ALL
            .iter()
            .map(|&counter| (counter.name().to_string(), self.counter(counter)))
            .collect();
        MetricsSnapshot { schema: TELEMETRY_SCHEMA.to_string(), stages, counters }
    }

    /// Serializes a snapshot as pretty JSON and writes it to `path`,
    /// creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Returns any underlying filesystem error.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json =
            serde_json::to_string_pretty(&self.snapshot()).expect("telemetry snapshot serializes");
        write_atomic(path.as_ref(), (json + "\n").as_bytes())
    }

    /// A raw, lossless, *mergeable* copy of the registry — full
    /// histogram buckets rather than the percentile summaries of
    /// [`Metrics::snapshot`]. Shard artifacts carry this form so a
    /// merge can fold shards' telemetry back together exactly
    /// ([`Metrics::absorb`]); summaries cannot be merged, buckets can.
    pub fn dump(&self) -> MetricsDump {
        MetricsDump {
            schema: METRICS_DUMP_SCHEMA.to_string(),
            stages: Stage::ALL
                .iter()
                .map(|&stage| (stage.name().to_string(), self.stages[stage as usize].snapshot()))
                .collect(),
            counters: Counter::ALL
                .iter()
                .map(|&counter| (counter.name().to_string(), self.counter(counter)))
                .collect(),
        }
    }

    /// Adds every observation and counter of a serialized dump into
    /// `self` — the cross-process counterpart of
    /// [`Metrics::merge_from`]. Names this build does not know are
    /// ignored (a newer writer's extra stages or counters cannot be
    /// represented here).
    pub fn absorb(&self, dump: &MetricsDump) {
        for (name, snap) in &dump.stages {
            if let Some(stage) = Stage::ALL.iter().copied().find(|s| s.name() == name) {
                self.stages[stage as usize].merge_snapshot(snap);
            }
        }
        for (name, value) in &dump.counters {
            if *value > 0 {
                if let Some(counter) = Counter::from_name(name) {
                    self.add(counter, *value);
                }
            }
        }
    }
}

/// Schema tag of the raw mergeable telemetry dump embedded in campaign
/// shard artifacts.
pub const METRICS_DUMP_SCHEMA: &str = "lkas-metrics-dump-v1";

/// A raw, mergeable serialization of a [`Metrics`] registry: full
/// per-stage histogram buckets plus the counters. Unlike
/// [`MetricsSnapshot`] (percentile summaries for humans and the diff
/// gate), a dump can be folded into another registry without loss —
/// that is how a campaign merge reconstructs sweep-wide telemetry from
/// per-shard runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsDump {
    /// Schema tag, always [`METRICS_DUMP_SCHEMA`].
    pub schema: String,
    /// `(stage name, raw histogram)` pairs, in [`Stage::ALL`] order.
    pub stages: Vec<(String, HistogramSnapshot)>,
    /// `(name, value)` counter pairs, in [`Counter::ALL`] order.
    pub counters: Vec<(String, u64)>,
}

/// Writes `bytes` to `path` atomically: the content lands in a
/// temporary file in the same directory and is renamed into place, so a
/// killed process never leaves a torn artifact. Parent directories are
/// created as needed.
///
/// # Errors
///
/// Returns any underlying filesystem error.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("artifact");
    let tmp = path.with_file_name(format!(".{file_name}.tmp-{}", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// RAII guard from [`Metrics::start`]: records the elapsed time for its
/// stage on drop.
#[derive(Debug)]
pub struct StageTimer<'m> {
    metrics: &'m Metrics,
    stage: Stage,
    started: Instant,
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        self.metrics.record(self.stage, self.started.elapsed());
    }
}

/// Timing for one stage within a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Stage name (see [`Stage::name`]).
    pub stage: String,
    /// Number of recorded observations.
    pub count: u64,
    /// Total time across observations, in milliseconds.
    pub total_ms: f64,
    /// Mean time per observation, in microseconds.
    pub mean_us: f64,
    /// Worst single observation, in microseconds.
    pub max_us: f64,
    /// Median estimate (µs), from the log2 histogram buckets. `None`
    /// when read from a pre-v3 document.
    pub p50_us: Option<f64>,
    /// 90th-percentile estimate (µs). `None` in pre-v3 documents.
    pub p90_us: Option<f64>,
    /// 99th-percentile estimate (µs). `None` in pre-v3 documents.
    pub p99_us: Option<f64>,
}

/// The JSON-exportable telemetry report (schema
/// [`TELEMETRY_SCHEMA`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Schema tag, always [`TELEMETRY_SCHEMA`].
    pub schema: String,
    /// Per-stage timing, in [`Stage::ALL`] order.
    pub stages: Vec<StageSnapshot>,
    /// `(name, value)` counter pairs, in [`Counter::ALL`] order.
    pub counters: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// `true` if this snapshot's schema tag is one this crate can
    /// interpret (the current schema or the backward-readable v1/v2).
    pub fn schema_is_supported(&self) -> bool {
        self.schema == TELEMETRY_SCHEMA
            || self.schema == TELEMETRY_SCHEMA_V2
            || self.schema == TELEMETRY_SCHEMA_V1
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a stage's timing by name.
    pub fn stage(&self, name: &str) -> Option<&StageSnapshot> {
        self.stages.iter().find(|s| s.stage == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_and_counters_accumulate() {
        let metrics = Metrics::new();
        metrics.record(Stage::Isp, Duration::from_micros(200));
        metrics.record(Stage::Isp, Duration::from_micros(100));
        metrics.time(Stage::Control, || std::thread::sleep(Duration::from_millis(1)));
        metrics.incr(Counter::Cycles);
        metrics.add(Counter::IspReconfigurations, 3);

        let snap = metrics.snapshot();
        let isp = snap.stage("isp").expect("isp stage present");
        assert_eq!(isp.count, 2);
        assert!((isp.total_ms - 0.3).abs() < 1e-9);
        assert!((isp.mean_us - 150.0).abs() < 1e-9);
        assert!((isp.max_us - 200.0).abs() < 1e-9);
        // Percentiles come from log2 bucket bounds, clamped to the max.
        let p50 = isp.p50_us.expect("v3 snapshots carry percentiles");
        let p99 = isp.p99_us.unwrap();
        assert!(p50 > 0.0 && p50 <= p99 && p99 <= isp.max_us, "{p50} {p99}");
        let control = snap.stage("control").expect("control stage present");
        assert_eq!(control.count, 1);
        assert!(control.total_ms >= 1.0);
        assert_eq!(snap.counter("cycles"), Some(1));
        assert_eq!(snap.counter("isp_reconfigurations"), Some(3));
        assert_eq!(snap.counter("perception_failures"), Some(0));
    }

    #[test]
    fn shared_across_threads() {
        let metrics = Metrics::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        metrics.incr(Counter::Cycles);
                        metrics.record(Stage::Perception, Duration::from_nanos(10));
                    }
                });
            }
        });
        assert_eq!(metrics.counter(Counter::Cycles), 4000);
        assert_eq!(metrics.snapshot().stage("perception").unwrap().count, 4000);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let metrics = Metrics::new();
        metrics.record(Stage::Render, Duration::from_micros(42));
        metrics.incr(Counter::SituationSwitches);
        let snap = metrics.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        assert!(json.contains(TELEMETRY_SCHEMA));
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn write_json_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("lkas-runtime-test-metrics");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/telemetry.json");
        Metrics::new().write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("lkas-telemetry-v3"));
        // The atomic writer leaves no temp file behind.
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_documents_remain_readable() {
        // A pre-fault-subsystem artifact (schema v1, 8 counters, no
        // fault/degradation fields) must still deserialize and answer
        // lookups; the v2-only counters are simply absent.
        let v1 = r#"{
            "schema": "lkas-telemetry-v1",
            "stages": [
                { "stage": "render", "count": 3, "total_ms": 1.5,
                  "mean_us": 500.0, "max_us": 700.0 }
            ],
            "counters": [["cycles", 3], ["perception_failures", 1]]
        }"#;
        let snap: MetricsSnapshot = serde_json::from_str(v1).unwrap();
        assert!(snap.schema_is_supported());
        assert_eq!(snap.counter("cycles"), Some(3));
        assert_eq!(snap.counter("faults_injected"), None);
        let render = snap.stage("render").unwrap();
        assert_eq!(render.count, 3);
        // Pre-v3 documents have no percentile fields.
        assert_eq!(render.p50_us, None);
        assert_eq!(render.p99_us, None);
    }

    #[test]
    fn v2_documents_remain_readable() {
        // A pre-histogram artifact (schema v2, mean/max-only stages, no
        // actuation stage) must still deserialize and answer lookups.
        let v2 = r#"{
            "schema": "lkas-telemetry-v2",
            "stages": [
                { "stage": "control", "count": 10, "total_ms": 2.0,
                  "mean_us": 200.0, "max_us": 900.0 }
            ],
            "counters": [["cycles", 10], ["faults_injected", 2]]
        }"#;
        let snap: MetricsSnapshot = serde_json::from_str(v2).unwrap();
        assert!(snap.schema_is_supported());
        assert_eq!(snap.counter("faults_injected"), Some(2));
        assert_eq!(snap.stage("control").unwrap().p99_us, None);
        assert!(snap.stage("actuation").is_none());
    }

    #[test]
    fn v3_snapshot_carries_fault_counters_and_percentiles() {
        let metrics = Metrics::new();
        metrics.incr(Counter::FaultsInjected);
        metrics.add(Counter::DegradedCycles, 7);
        metrics.record(Stage::Actuation, Duration::from_micros(12));
        let snap = metrics.snapshot();
        assert!(snap.schema_is_supported());
        assert_eq!(snap.schema, TELEMETRY_SCHEMA);
        assert_eq!(snap.counter("faults_injected"), Some(1));
        assert_eq!(snap.counter("degraded_cycles"), Some(7));
        assert_eq!(snap.counter("measurement_holds"), Some(0));
        let act = snap.stage("actuation").expect("v3 adds the actuation stage");
        assert_eq!(act.count, 1);
        assert!(act.p50_us.unwrap() > 0.0);
    }

    #[test]
    fn dump_absorb_round_trip_equals_direct_recording() {
        // Two "shard processes" record disjoint work; absorbing their
        // serialized dumps must equal having recorded everything in one
        // registry — the property behind the campaign telemetry merge.
        let (shard_a, shard_b, direct) = (Metrics::new(), Metrics::new(), Metrics::new());
        for (i, us) in [3u64, 9, 27, 81, 243, 729].iter().enumerate() {
            let m = if i % 2 == 0 { &shard_a } else { &shard_b };
            m.record(Stage::Isp, Duration::from_micros(*us));
            m.incr(Counter::CampaignEvaluations);
            direct.record(Stage::Isp, Duration::from_micros(*us));
            direct.incr(Counter::CampaignEvaluations);
        }
        let merged = Metrics::new();
        for shard in [&shard_a, &shard_b] {
            let json = serde_json::to_string_pretty(&shard.dump()).unwrap();
            let dump: MetricsDump = serde_json::from_str(&json).unwrap();
            assert_eq!(dump.schema, METRICS_DUMP_SCHEMA);
            merged.absorb(&dump);
        }
        assert_eq!(merged.snapshot(), direct.snapshot());
        assert_eq!(merged.stage_histogram(Stage::Isp), direct.stage_histogram(Stage::Isp));
        // Unknown names from a future writer are ignored, not fatal.
        let mut alien = shard_a.dump();
        alien.counters.push(("counter_from_the_future".to_string(), 5));
        Metrics::new().absorb(&alien);
    }

    #[test]
    fn merge_from_equals_direct_recording() {
        let shared = Metrics::new();
        let (a, b) = (Metrics::new(), Metrics::new());
        let direct = Metrics::new();
        for (i, us) in [5u64, 10, 20, 40, 80].iter().enumerate() {
            let m = if i % 2 == 0 { &a } else { &b };
            m.record(Stage::Perception, Duration::from_micros(*us));
            m.incr(Counter::Cycles);
            direct.record(Stage::Perception, Duration::from_micros(*us));
            direct.incr(Counter::Cycles);
        }
        shared.merge_from(&a);
        shared.merge_from(&b);
        assert_eq!(shared.snapshot(), direct.snapshot());
        assert_eq!(
            shared.stage_histogram(Stage::Perception),
            direct.stage_histogram(Stage::Perception)
        );
    }
}
