//! The ordered parallel executor.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// An ordered parallel map over a list of jobs.
///
/// `Executor::new(threads).run(jobs, worker)` applies `worker` to every
/// job on up to `threads` scoped OS threads and returns the results **in
/// input order**, however the workers interleave. Threads pull the next
/// job index from a shared atomic cursor, so long and short jobs balance
/// without any per-pool bookkeeping at the call sites.
///
/// With one thread (or one job) the executor degenerates to a plain
/// sequential loop on the calling thread — no threads are spawned, which
/// also makes `threads = 1` a deterministic reference for tests.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor running jobs on up to `threads` worker threads.
    /// `threads` is clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        Executor { threads: threads.max(1) }
    }

    /// The default worker-thread count: the machine's available
    /// parallelism, falling back to 1 (sequential) when the platform
    /// cannot report it. Every sweep driver that wants "as many workers
    /// as the machine has" routes through here, so batch and online
    /// paths agree on worker sizing.
    pub fn default_threads() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    /// An executor sized by [`Executor::default_threads`].
    pub fn with_default_threads() -> Self {
        Executor::new(Executor::default_threads())
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `worker` over every job, returning results in input order.
    ///
    /// # Panics
    ///
    /// If `worker` panics on any job, the panic propagates to the caller
    /// once the remaining workers wind down (`std::thread::scope` joins
    /// every spawned thread before returning).
    pub fn run<J, R, F>(&self, jobs: Vec<J>, worker: F) -> Vec<R>
    where
        J: Send,
        R: Send,
        F: Fn(J) -> R + Sync,
    {
        self.run_with_local(jobs, || (), |job, ()| worker(job), |()| {})
    }

    /// Like [`Executor::run`], but each worker thread carries a local
    /// state: `init` builds it when the worker starts, `worker` gets
    /// `&mut` access per job, and `finish` consumes it when the worker
    /// runs out of jobs.
    ///
    /// The motivating use is telemetry: a sweep gives each worker a
    /// local `Metrics` registry (no cross-thread cache-line contention
    /// on the histogram buckets) and merges the per-worker histograms
    /// into the shared registry in `finish` — mergeability guarantees
    /// the result equals single-thread recording (see
    /// `Metrics::merge_from`).
    ///
    /// On the sequential path (one thread or ≤ 1 job) a single state
    /// serves every job, so `init`/`finish` run exactly once.
    ///
    /// # Panics
    ///
    /// Worker panics propagate as in [`Executor::run`]; `finish` does
    /// not run for a worker whose job panicked.
    pub fn run_with_local<J, R, S, I, F, D>(
        &self,
        jobs: Vec<J>,
        init: I,
        worker: F,
        finish: D,
    ) -> Vec<R>
    where
        J: Send,
        R: Send,
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(J, &mut S) -> R + Sync,
        D: Fn(S) + Sync,
    {
        let n = jobs.len();
        if self.threads == 1 || n <= 1 {
            let mut state = init();
            let results = jobs.into_iter().map(|job| worker(job, &mut state)).collect();
            finish(state);
            return results;
        }

        // One slot per job keeps completion-order writes from disturbing
        // input-order results; the cursor hands each index to exactly one
        // worker.
        let queue: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        let job = queue[index]
                            .lock()
                            .expect("job queue lock")
                            .take()
                            .expect("each job index is claimed once");
                        let result = worker(job, &mut state);
                        *slots[index].lock().expect("result slot lock") = Some(result);
                    }
                    finish(state);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock")
                    .expect("every claimed job stored a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Duration;

    #[test]
    fn preserves_input_order_under_contention() {
        // Early jobs sleep longest so they finish *last*; order must
        // still match the input.
        let jobs: Vec<usize> = (0..16).collect();
        let results = Executor::new(4).run(jobs, |i| {
            std::thread::sleep(Duration::from_millis((16 - i) as u64));
            i * 10
        });
        assert_eq!(results, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_degenerates_to_sequential() {
        let order = Mutex::new(Vec::new());
        let results = Executor::new(1).run(vec![3usize, 1, 2], |i| {
            order.lock().unwrap().push(i);
            i
        });
        assert_eq!(results, vec![3, 1, 2]);
        // threads = 1 runs on the calling thread in input order.
        assert_eq!(*order.lock().unwrap(), vec![3, 1, 2]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(Executor::default_threads() >= 1);
        assert_eq!(Executor::with_default_threads().threads(), Executor::default_threads());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(Executor::new(0).run(vec![1, 2], |i| i + 1), vec![2, 3]);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let results: Vec<u32> = Executor::new(8).run(Vec::<u32>::new(), |i| i);
        assert!(results.is_empty());
    }

    #[test]
    fn local_state_reaches_finish_exactly_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let finishes = AtomicUsize::new(0);
        let total = Mutex::new(0usize);
        let results = Executor::new(3).run_with_local(
            (0..32usize).collect(),
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |job, local| {
                *local += job;
                job
            },
            |local| {
                finishes.fetch_add(1, Ordering::SeqCst);
                *total.lock().unwrap() += local;
            },
        );
        assert_eq!(results, (0..32).collect::<Vec<_>>());
        assert_eq!(inits.load(Ordering::SeqCst), finishes.load(Ordering::SeqCst));
        // Every job's contribution survives the per-worker merge.
        assert_eq!(*total.lock().unwrap(), (0..32).sum::<usize>());
    }

    #[test]
    fn sequential_path_uses_one_state() {
        let states = Mutex::new(0usize);
        Executor::new(1).run_with_local(
            vec![1, 2, 3],
            || {
                *states.lock().unwrap() += 1;
            },
            |j, _| j,
            |()| {},
        );
        assert_eq!(*states.lock().unwrap(), 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            Executor::new(4).run((0..8).collect::<Vec<usize>>(), |i| {
                assert!(i != 5, "boom");
                i
            })
        }));
        assert!(outcome.is_err(), "executor must propagate worker panics");
    }

    #[test]
    fn panic_propagates_on_single_thread_too() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            Executor::new(1).run(vec![0usize], |_| panic!("boom"))
        }));
        assert!(outcome.is_err());
    }
}
