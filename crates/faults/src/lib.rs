//! # lkas-faults — deterministic fault injection for the HiL loop
//!
//! The paper's claim is *robustness* of the closed-up LKAS pipeline, but
//! a nominal reproduction can only observe failures, never provoke them.
//! This crate provides the provocation side: a seed-driven [`FaultPlan`]
//! DSL describing *which* fault hits *which* control cycles, and the
//! per-cycle [`CycleFaults`] view the HiL simulator consumes.
//!
//! Supported fault classes (one per stage of the sensing→actuation
//! chain):
//!
//! * **camera frame drop** — the frame never arrives; classifiers cannot
//!   run and perception has nothing to measure;
//! * **Bayer-domain corruption** — hot pixels, row banding, exposure
//!   glitches applied to the RAW frame between sensor and ISP (the
//!   primitives live in [`lkas_imaging::sensor`]);
//! * **classifier misprediction** — the situation estimate is forced to
//!   a wrong value for the faulted cycles (either an explicit situation
//!   or a deterministic confusion of the truth);
//! * **perception timeout** — the cycle's actuation lands `extra_ms`
//!   after the designed sensor-to-actuator delay `τ`, violating the
//!   delay bound the controller was designed for;
//! * **actuation faults** — a stuck or sluggish steering actuator
//!   ([`lkas_vehicle::ActuatorFault`]).
//!
//! Everything is a pure function of the plan (and its seed): the same
//! plan replays bit-identically, across runs and across executor thread
//! counts, which is what makes fault campaigns usable as regression
//! tests.

mod inject;
mod plan;

pub use inject::{apply_bayer_fault, derive_cycle_seed, BayerFaultKind};
pub use plan::{
    benign_situation, ActuationFault, CycleFaults, FaultKind, FaultPlan, FaultWindow,
    Misprediction, FAULT_PLAN_SCHEMA,
};
