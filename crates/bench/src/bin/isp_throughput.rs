//! Frame-path throughput: allocating vs pooled, scalar vs lane kernels.
//!
//! Measures the steady-state cost of each ISP configuration (S0–S8)
//! along two axes — the memory path (one-shot allocating `process`,
//! pooled in-place `process_into`, row-tiled `process_into` on worker
//! threads) and the kernel backend (`scalar` reference, bit-exact
//! `lanes`, fixed-point `lanes-q14`) — plus the perception pipeline
//! (rectify + binarize) per backend. This is the harness behind the
//! README "Steady-state frame path" table and DESIGN.md §10/§17.
//!
//! Flags: `--iters N` (timed iterations per cell, default 40),
//! `--threads N` (tiled-path worker count, default 4).
//!
//! Subcommand: `isp_throughput check --baseline PATH [--max-rel X]`
//! re-measures and fails (exit 1) if any pooled-lanes ISP mean or the
//! pooled perception mean exceeds `X` times its baseline value
//! (default 4.0 — a deliberately generous bound in the gate-telemetry
//! philosophy: the gate exists to catch order-of-magnitude perf
//! regressions, not scheduler noise on a busy CI box).

use lkas_bench::{arg_value, render_table, write_result};
use lkas_imaging::image::RgbImage;
use lkas_imaging::isp::{IspConfig, IspPipeline};
use lkas_imaging::sensor::{Sensor, SensorConfig};
use lkas_imaging::{KernelBackend, Scratch};
use lkas_perception::pipeline::{Perception, PerceptionConfig, PerceptionScratch};
use lkas_perception::roi::Roi;
use lkas_scene::camera::Camera;
use lkas_scene::render::SceneRenderer;
use lkas_scene::situation::TABLE3_SITUATIONS;
use lkas_scene::track::Track;
use serde::{Deserialize, Serialize};
use std::time::Instant;

#[derive(Serialize, Deserialize)]
struct ConfigRow {
    config: String,
    alloc_us: f64,
    scalar_us: f64,
    lanes_us: f64,
    lanes_q14_us: f64,
    tiled_us: f64,
    lanes_speedup: f64,
}

#[derive(Serialize, Deserialize)]
struct PerceptionRow {
    backend: String,
    pooled_us: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    schema: String,
    iters: usize,
    tile_threads: usize,
    isp: Vec<ConfigRow>,
    perception: Vec<PerceptionRow>,
}

/// Mean microseconds per call of `f` over `iters` timed iterations
/// (after 3 warm-up calls that also size any pooled buffers).
fn time_us(iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn measure(iters: usize, tile_threads: usize) -> Report {
    let cam = Camera::default_automotive();
    let track = Track::for_situation(&TABLE3_SITUATIONS[0], 500.0);
    let frame = SceneRenderer::new(cam.clone()).render(&track, 50.0, 0.0, 0.0);
    let raw = Sensor::new(SensorConfig::default(), 1).capture(&frame, 1.0);

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for cfg in IspConfig::ALL {
        let alloc_us = time_us(iters, || {
            std::hint::black_box(IspPipeline::new(cfg).process(&raw));
        });
        let mut backend_us = [0.0f64; 3];
        for (i, backend) in KernelBackend::ALL.into_iter().enumerate() {
            let isp = IspPipeline::new(cfg).with_backend(backend);
            let mut scratch = Scratch::new();
            let mut out = RgbImage::new(2, 2);
            backend_us[i] = time_us(iters, || {
                isp.process_into(&raw, &mut scratch, &mut out);
                std::hint::black_box(&out);
            });
        }
        let [scalar_us, lanes_us, lanes_q14_us] = backend_us;
        let isp = IspPipeline::new(cfg);
        let mut tiled_scratch = Scratch::with_threads(tile_threads);
        let mut out = RgbImage::new(2, 2);
        let tiled_us = time_us(iters, || {
            isp.process_into(&raw, &mut tiled_scratch, &mut out);
            std::hint::black_box(&out);
        });
        let row = ConfigRow {
            config: cfg.name().to_string(),
            alloc_us,
            scalar_us,
            lanes_us,
            lanes_q14_us,
            tiled_us,
            lanes_speedup: scalar_us / lanes_us,
        };
        table.push(vec![
            row.config.clone(),
            format!("{alloc_us:.0}"),
            format!("{scalar_us:.0}"),
            format!("{lanes_us:.0}"),
            format!("{lanes_q14_us:.0}"),
            format!("{tiled_us:.0}"),
            format!("{:.2}x", row.lanes_speedup),
        ]);
        rows.push(row);
    }

    let rgb = IspPipeline::new(IspConfig::S0).process(&raw);
    let mut perception = Vec::new();
    for backend in KernelBackend::ALL {
        let pr =
            Perception::new(PerceptionConfig::new(Roi::Roi1), cam.clone()).with_backend(backend);
        let mut pscratch = PerceptionScratch::new();
        let pooled_us = time_us(iters, || {
            std::hint::black_box(pr.process_into(&rgb, &mut pscratch).ok());
        });
        perception.push(PerceptionRow { backend: backend.name().to_string(), pooled_us });
    }

    println!(
        "{}",
        render_table(
            &["config", "alloc µs", "scalar µs", "lanes µs", "q14 µs", "tiled µs", "lanes"],
            &table,
        )
    );
    for p in &perception {
        println!("perception[{}]: pooled {:.0} µs", p.backend, p.pooled_us);
    }

    Report {
        schema: "lkas-isp-throughput-v2".to_string(),
        iters,
        tile_threads,
        isp: rows,
        perception,
    }
}

/// `check` subcommand: compare a fresh measurement against a recorded
/// baseline, allowing each tracked mean to grow by at most `max_rel`×.
fn check(report: &Report, baseline_path: &str, max_rel: f64) -> i32 {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let baseline: Report =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad baseline JSON: {e}"));
    let mut failures = 0;
    for base in &baseline.isp {
        let Some(cur) = report.isp.iter().find(|r| r.config == base.config) else {
            eprintln!("[check] FAIL: config {} missing from fresh report", base.config);
            failures += 1;
            continue;
        };
        let bound = base.lanes_us * max_rel;
        if cur.lanes_us > bound {
            eprintln!(
                "[check] FAIL: {} lanes {:.0} µs > {:.0} µs ({}× baseline {:.0} µs)",
                base.config, cur.lanes_us, bound, max_rel, base.lanes_us
            );
            failures += 1;
        } else {
            eprintln!("[check] ok: {} lanes {:.0} µs ≤ {:.0} µs", base.config, cur.lanes_us, bound);
        }
    }
    for base in &baseline.perception {
        let Some(cur) = report.perception.iter().find(|r| r.backend == base.backend) else {
            eprintln!("[check] FAIL: perception backend {} missing", base.backend);
            failures += 1;
            continue;
        };
        let bound = base.pooled_us * max_rel;
        if cur.pooled_us > bound {
            eprintln!(
                "[check] FAIL: perception[{}] {:.0} µs > {:.0} µs",
                base.backend, cur.pooled_us, bound
            );
            failures += 1;
        } else {
            eprintln!(
                "[check] ok: perception[{}] {:.0} µs ≤ {:.0} µs",
                base.backend, cur.pooled_us, bound
            );
        }
    }
    if failures > 0 {
        eprintln!("[check] {failures} bound violation(s) against {baseline_path}");
        1
    } else {
        eprintln!("[check] all means within {max_rel}× of {baseline_path}");
        0
    }
}

fn main() {
    let iters: usize = arg_value("--iters").and_then(|v| v.parse().ok()).unwrap_or(40);
    let tile_threads: usize = arg_value("--threads").and_then(|v| v.parse().ok()).unwrap_or(4);
    let check_mode = std::env::args().nth(1).is_some_and(|a| a == "check");

    eprintln!("[isp_throughput] {iters} iters/cell, tiled path on {tile_threads} threads");
    let report = measure(iters, tile_threads);

    if check_mode {
        let baseline = arg_value("--baseline").expect("check requires --baseline PATH");
        let max_rel: f64 = arg_value("--max-rel").and_then(|v| v.parse().ok()).unwrap_or(4.0);
        std::process::exit(check(&report, &baseline, max_rel));
    }
    write_result("isp_throughput", &report);
}
