//! Shared execution layer for the LKAS reproduction.
//!
//! Every sweep driver and experiment binary funnels through this crate
//! instead of hand-rolling its own thread pool:
//!
//! - [`Executor`] — an ordered parallel map over a job list, built on
//!   `std::thread::scope` and an atomic job cursor. Results come back in
//!   input order regardless of completion order, and a worker panic
//!   propagates to the caller (no silently dropped jobs).
//! - [`Metrics`] / [`StageTimer`] — a lock-free telemetry registry
//!   recording per-cycle stage durations (render, sensor, ISP, classifier
//!   invocation, perception, control) and monotonic event counters
//!   (perception failures, situation switches, per-knob
//!   reconfigurations), exportable as a JSON artifact mirroring the
//!   paper's Table II runtime breakdown.

mod executor;
mod metrics;

pub use executor::Executor;
pub use metrics::{
    Counter, Metrics, MetricsSnapshot, Stage, StageSnapshot, StageTimer, TELEMETRY_SCHEMA,
    TELEMETRY_SCHEMA_V1,
};
