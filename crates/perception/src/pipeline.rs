//! The full perception pipeline: frame in, lateral deviation out.

use crate::bev::BirdsEye;
use crate::roi::Roi;
use crate::sliding::{sliding_window_search, SlidingWindowResult};
use crate::threshold::binarize;
use crate::LOOK_AHEAD;
use lkas_imaging::image::RgbImage;
use lkas_scene::camera::Camera;
use lkas_scene::track::LANE_WIDTH;
use serde::{Deserialize, Serialize};

/// Errors of the perception stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerceptionError {
    /// No lane boundary passed the fit-quality gates — the controller
    /// must reuse its previous measurement (and will eventually fail if
    /// this persists, which is the paper's Case 1/2 crash mechanism).
    NoLaneDetected,
}

impl std::fmt::Display for PerceptionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerceptionError::NoLaneDetected => write!(f, "no lane boundary detected"),
        }
    }
}

impl std::error::Error for PerceptionError {}

/// Configuration knobs of the perception stage (the paper's "PR knobs").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerceptionConfig {
    /// Active region of interest.
    pub roi: Roi,
    /// Look-ahead distance at which `y_L` is evaluated (m).
    pub look_ahead: f64,
}

impl PerceptionConfig {
    /// Creates a configuration with the paper's look-ahead (5.5 m).
    pub fn new(roi: Roi) -> Self {
        PerceptionConfig { roi, look_ahead: LOOK_AHEAD }
    }
}

/// Output of one perception invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PerceptionOutput {
    /// Lateral deviation of the vehicle from the lane center at the
    /// look-ahead distance (m, positive = vehicle left of center).
    pub y_l: f64,
    /// Number of lane boundaries used (1 or 2).
    pub lanes_used: usize,
    /// Total supporting pixels across the used fits.
    pub support: usize,
}

/// The perception pipeline (ROI → bird's-eye → binarize → sliding
/// windows → polynomial fit → `y_L`).
///
/// Rebuilding is cheap; the runtime reconfiguration logic constructs a
/// new `Perception` whenever the situation changes the ROI knob.
#[derive(Debug, Clone)]
pub struct Perception {
    config: PerceptionConfig,
    birds_eye: BirdsEye,
}

impl Perception {
    /// Creates the pipeline for a camera and configuration.
    ///
    /// # Panics
    ///
    /// Panics if the ROI cannot be rectified with this camera (does not
    /// happen for the built-in ROIs and the default camera).
    pub fn new(config: PerceptionConfig, camera: Camera) -> Self {
        let birds_eye =
            BirdsEye::new(camera, config.roi).expect("built-in ROIs must be rectifiable");
        Perception { config, birds_eye }
    }

    /// The active configuration.
    pub fn config(&self) -> PerceptionConfig {
        self.config
    }

    /// Processes one ISP output frame.
    ///
    /// # Errors
    ///
    /// Returns [`PerceptionError::NoLaneDetected`] when no boundary
    /// passes the quality gates (wrong ROI, unusable image, etc.).
    pub fn process(&self, frame: &RgbImage) -> Result<PerceptionOutput, PerceptionError> {
        let bev = self.birds_eye.rectify(frame);
        let mask = binarize(&bev);
        let fits = sliding_window_search(&bev, &mask);
        self.deviation_from_fits(&bev, &fits)
    }

    /// Converts lane fits to the lateral deviation at the look-ahead.
    fn deviation_from_fits(
        &self,
        bev: &crate::bev::BevImage,
        fits: &SlidingWindowResult,
    ) -> Result<PerceptionOutput, PerceptionError> {
        let row_la = bev.row_of_forward(self.config.look_ahead);
        let (center_lateral, lanes_used, support) = match (&fits.left, &fits.right) {
            (Some(l), Some(r)) => {
                let cl = bev.lateral_of_col(l.col_at(row_la));
                let cr = bev.lateral_of_col(r.col_at(row_la));
                ((cl + cr) / 2.0, 2, l.n_pixels + r.n_pixels)
            }
            (Some(l), None) => {
                let cl = bev.lateral_of_col(l.col_at(row_la));
                (cl - LANE_WIDTH / 2.0, 1, l.n_pixels)
            }
            (None, Some(r)) => {
                let cr = bev.lateral_of_col(r.col_at(row_la));
                (cr + LANE_WIDTH / 2.0, 1, r.n_pixels)
            }
            (None, None) => return Err(PerceptionError::NoLaneDetected),
        };
        // The lane center appearing at lateral `c` in the vehicle frame
        // means the vehicle sits at `−c` relative to the lane center.
        Ok(PerceptionOutput { y_l: -center_lateral, lanes_used, support })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkas_imaging::isp::{IspConfig, IspPipeline};
    use lkas_imaging::sensor::{Sensor, SensorConfig};
    use lkas_scene::render::SceneRenderer;
    use lkas_scene::situation::{
        LaneColor, LaneForm, RoadLayout, SceneKind, SituationFeatures, TABLE3_SITUATIONS,
    };
    use lkas_scene::track::Track;

    fn measure(
        track: &Track,
        s: f64,
        d: f64,
        psi: f64,
        roi: Roi,
        isp: IspConfig,
        seed: u64,
    ) -> Result<PerceptionOutput, PerceptionError> {
        let cam = Camera::default_automotive();
        let frame = SceneRenderer::new(cam.clone()).render(track, s, d, psi);
        let raw = Sensor::new(SensorConfig::default(), seed).capture(&frame, 1.0);
        let rgb = IspPipeline::new(isp).process(&raw);
        Perception::new(PerceptionConfig::new(roi), cam).process(&rgb)
    }

    #[test]
    fn centered_vehicle_measures_near_zero() {
        let track = Track::for_situation(&TABLE3_SITUATIONS[0], 500.0);
        let out = measure(&track, 10.0, 0.0, 0.0, Roi::Roi1, IspConfig::S0, 1).unwrap();
        assert!(out.y_l.abs() < 0.15, "y_L = {}", out.y_l);
        assert_eq!(out.lanes_used, 2);
    }

    #[test]
    fn offset_sign_convention() {
        let track = Track::for_situation(&TABLE3_SITUATIONS[0], 500.0);
        // Vehicle left of center ⇒ positive y_L.
        let left = measure(&track, 10.0, 0.4, 0.0, Roi::Roi1, IspConfig::S0, 2).unwrap();
        assert!(left.y_l > 0.2, "y_L = {}", left.y_l);
        let right = measure(&track, 10.0, -0.4, 0.0, Roi::Roi1, IspConfig::S0, 3).unwrap();
        assert!(right.y_l < -0.2, "y_L = {}", right.y_l);
    }

    #[test]
    fn heading_error_contributes_to_y_l() {
        // y_L ≈ y + L_L·ψ: a pure heading error reads as deviation.
        let track = Track::for_situation(&TABLE3_SITUATIONS[0], 500.0);
        let psi = 0.05; // nose pointing left
        let out = measure(&track, 10.0, 0.0, psi, Roi::Roi1, IspConfig::S0, 4).unwrap();
        let expected = LOOK_AHEAD * psi;
        assert!((out.y_l - expected).abs() < 0.2, "y_L = {}, expected ≈ {expected}", out.y_l);
    }

    #[test]
    fn accuracy_across_day_situations_with_correct_roi() {
        // With the situation-correct ROI and full ISP, daytime situations
        // measure |y_L error| < 0.3 m — the Fig. 1 "accuracy" criterion.
        for (idx, roi) in [(0usize, Roi::Roi1), (7, Roi::Roi2), (14, Roi::Roi4), (12, Roi::Roi3)] {
            let track = Track::for_situation(&TABLE3_SITUATIONS[idx], 1000.0);
            let out = measure(&track, 60.0, 0.0, 0.0, roi, IspConfig::S0, 5).unwrap();
            // On turns the look-ahead point sits on a curve; the true
            // y_L for a centered vehicle is ≈ −κ·L²/2 relative error.
            assert!(out.y_l.abs() < 0.35, "situation {idx} with {roi}: y_L = {}", out.y_l);
        }
    }

    #[test]
    fn wrong_roi_on_turn_fails_or_degrades() {
        let sit = SituationFeatures::new(
            LaneColor::White,
            LaneForm::Dotted,
            RoadLayout::RightTurn,
            SceneKind::Day,
        );
        let track = Track::for_situation(&sit, 1000.0);
        // ROI 1 on a dotted right turn: either no detection or a clearly
        // worse estimate than ROI 3.
        let wrong = measure(&track, 60.0, 0.0, 0.0, Roi::Roi1, IspConfig::S0, 6);
        let fine = measure(&track, 60.0, 0.0, 0.0, Roi::Roi3, IspConfig::S0, 6).unwrap();
        match wrong {
            Err(PerceptionError::NoLaneDetected) => {}
            Ok(w) => assert!(
                w.support < fine.support,
                "wrong ROI support {} must trail correct ROI {}",
                w.support,
                fine.support
            ),
        }
    }

    #[test]
    fn flat_frame_errors() {
        let cam = Camera::default_automotive();
        let pr = Perception::new(PerceptionConfig::new(Roi::Roi1), cam);
        let err = pr.process(&RgbImage::filled(512, 256, [0.5; 3])).unwrap_err();
        assert_eq!(err, PerceptionError::NoLaneDetected);
    }
}
