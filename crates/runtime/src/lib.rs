//! Shared execution layer for the LKAS reproduction.
//!
//! Every sweep driver and experiment binary funnels through this crate
//! instead of hand-rolling its own thread pool:
//!
//! - [`Executor`] — an ordered parallel map over a job list, built on
//!   `std::thread::scope` and an atomic job cursor. Results come back in
//!   input order regardless of completion order, and a worker panic
//!   propagates to the caller (no silently dropped jobs).
//! - [`Metrics`] / [`StageTimer`] — a lock-free telemetry registry
//!   recording per-cycle stage durations (render, sensor, ISP, classifier
//!   invocation, perception, control, actuation) into log2 latency
//!   histograms ([`LatencyHistogram`]) plus monotonic event counters
//!   (perception failures, situation switches, per-knob
//!   reconfigurations, fault/degradation events), exportable as a JSON
//!   artifact (`lkas-telemetry-v3`: p50/p90/p99/max per stage) mirroring
//!   the paper's Table II runtime breakdown.
//! - [`TraceRecorder`] / [`TraceSink`] — bounded per-run ring buffers of
//!   per-cycle spans and instant events with deterministic virtual
//!   timestamps, exportable as Chrome trace-event JSON viewable in
//!   Perfetto.
//! - [`TelemetryBus`] / [`CycleDelta`] — a bounded, non-blocking
//!   per-cycle telemetry stream with drop-oldest backpressure
//!   (`stream_dropped` accounting), plus the [`FlightRecorder`]
//!   post-mortem ring and the sparse [`MetricsDelta`] encoding the
//!   fleet daemon streams to watchers.
//! - [`report`] — snapshot pretty-printing and the baseline-diff logic
//!   behind the `telemetry_report` harness and the CI perf smoke gate.
//! - [`campaign`] — sharded, resumable campaign execution: a
//!   deterministic `--shard i/N` work-partitioner over any canonical
//!   candidate grid, a content-keyed JSONL checkpoint that lets an
//!   interrupted shard resume without re-evaluating completed
//!   candidates, and a shard-artifact merge whose output is
//!   byte-identical to the single-process sweep at any shard and
//!   thread count.

pub mod campaign;
mod executor;
mod hist;
mod metrics;
pub mod report;
mod stream;
mod trace;

pub use campaign::{
    merge_shard_files, read_shard_file, run_campaign, write_shard_file, CampaignRun, CampaignSpec,
    CampaignStats, Fingerprint, MergedShards, Shard, ShardFile, SHARD_SCHEMA,
};
pub use executor::Executor;
pub use hist::{bucket_index, bucket_upper_ns, HistogramSnapshot, LatencyHistogram, HIST_BUCKETS};
pub use metrics::{
    write_atomic, Counter, Metrics, MetricsDump, MetricsSnapshot, Stage, StageSnapshot, StageTimer,
    METRICS_DUMP_SCHEMA, TELEMETRY_SCHEMA, TELEMETRY_SCHEMA_V1, TELEMETRY_SCHEMA_V2,
};
pub use stream::{
    apply_delta, fold, CycleDelta, DeltaTracker, FlightDump, FlightRecorder, MetricsDelta,
    StageDelta, Subscription, TelemetryBus, DEFAULT_FLIGHT_CAPACITY, DEFAULT_STREAM_CAPACITY,
    FLIGHT_SCHEMA, FLIGHT_TRIGGER_LABEL, STREAM_SCHEMA, TELEMETRY_DELTA_SCHEMA,
};
pub use trace::{TraceRecorder, TraceSink, CYCLE_TICKS, DEFAULT_TRACE_CAPACITY, STAGE_TICKS};
