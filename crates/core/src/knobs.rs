//! The configurable knobs (Table II) and per-situation tunings
//! (Table III).

use lkas_control::design::ControllerConfig;
use lkas_imaging::isp::IspConfig;
use lkas_perception::roi::Roi;
use lkas_platform::schedule::{ClassifierSet, LkasSchedule};
use lkas_scene::situation::{LaneForm, RoadLayout, SituationFeatures, TABLE3_SITUATIONS};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One knob tuning: the three groups of Table II.
///
/// The control pair `(h, τ)` is *derived* — it follows from the ISP
/// configuration and the classifier invocation set through the platform
/// schedule, see [`KnobTuning::controller_config`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnobTuning {
    /// ISP approximation knob.
    pub isp: IspConfig,
    /// Perception ROI knob.
    pub roi: Roi,
    /// Vehicle speed knob (km/h).
    pub speed_kmph: f64,
}

impl KnobTuning {
    /// Creates a tuning.
    pub fn new(isp: IspConfig, roi: Roi, speed_kmph: f64) -> Self {
        KnobTuning { isp, roi, speed_kmph }
    }

    /// The conservative default: exact ISP, centered ROI, 50 km/h
    /// (Case 1's static setting).
    pub fn conservative() -> Self {
        KnobTuning { isp: IspConfig::S0, roi: Roi::Roi1, speed_kmph: 50.0 }
    }

    /// The platform schedule this tuning induces when the given
    /// classifiers run each frame.
    pub fn schedule(&self, classifiers: ClassifierSet) -> LkasSchedule {
        LkasSchedule::new(self.isp, classifiers)
    }

    /// The control design point `[v, h, τ]` for this tuning under the
    /// given classifier set (Table III's last column).
    ///
    /// Following the paper's footnote 5, the designed delay is the
    /// profiled `τ` *ceiled to the 5 ms simulation step* — actuation in
    /// the HiL loop lands on that grid, so the design must assume the
    /// same (this also collapses each `(v, h)` family to one switching
    /// mode, which is what makes the CQLF argument of Sec. III-D go
    /// through).
    pub fn controller_config(&self, classifiers: ClassifierSet) -> ControllerConfig {
        let timing = self.schedule(classifiers).timing();
        let tau_design =
            (timing.tau_ms / lkas_platform::SIM_STEP_MS).ceil() * lkas_platform::SIM_STEP_MS;
        ControllerConfig { speed_kmph: self.speed_kmph, h_ms: timing.h_ms, tau_ms: tau_design }
    }
}

/// A characterization table: situation → best-QoC knob tuning
/// (the paper's Table III).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KnobTable {
    entries: Vec<(SituationFeatures, KnobTuning)>,
}

impl KnobTable {
    /// An empty table.
    pub fn new() -> Self {
        KnobTable::default()
    }

    /// Inserts or replaces the tuning for a situation.
    pub fn insert(&mut self, situation: SituationFeatures, tuning: KnobTuning) {
        if let Some(slot) = self.entries.iter_mut().find(|(s, _)| *s == situation) {
            slot.1 = tuning;
        } else {
            self.entries.push((situation, tuning));
        }
    }

    /// Looks up the exact tuning for a situation.
    pub fn get(&self, situation: &SituationFeatures) -> Option<KnobTuning> {
        self.entries.iter().find(|(s, _)| s == situation).map(|(_, t)| *t)
    }

    /// Looks up a tuning with graceful degradation: exact match first,
    /// then the nearest characterized situation (same layout and lane
    /// form, then same layout), finally the safe default with a
    /// layout-appropriate coarse ROI.
    pub fn lookup(&self, situation: &SituationFeatures) -> KnobTuning {
        if let Some(t) = self.get(situation) {
            return t;
        }
        if let Some((_, t)) = self
            .entries
            .iter()
            .find(|(s, _)| s.layout == situation.layout && s.lane_form == situation.lane_form)
        {
            return *t;
        }
        if let Some((_, t)) = self.entries.iter().find(|(s, _)| s.layout == situation.layout) {
            return *t;
        }
        KnobTuning {
            isp: IspConfig::S0,
            roi: coarse_roi_for(situation.layout),
            speed_kmph: if situation.layout == RoadLayout::Straight { 50.0 } else { 30.0 },
        }
    }

    /// Number of characterized situations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no situation is characterized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(situation, tuning)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(SituationFeatures, KnobTuning)> {
        self.entries.iter()
    }

    /// The paper's published Table III tunings for the 21 situations.
    ///
    /// Used as the reference point in EXPERIMENTS.md; the
    /// [`crate::characterize`] module regenerates a table of this shape
    /// from closed-loop simulations on *this* workspace's substrates.
    pub fn paper_table3() -> Self {
        use IspConfig::*;
        use Roi::*;
        let isp =
            [S3, S7, S4, S6, S6, S8, S8, S6, S3, S3, S8, S3, S3, S8, S3, S8, S8, S3, S8, S2, S2];
        let roi = [
            Roi1, Roi1, Roi1, Roi1, Roi1, Roi1, Roi1, // 1–7
            Roi2, Roi2, Roi2, Roi2, Roi2, // 8–12
            Roi3, Roi3, // 13–14
            Roi4, Roi4, Roi4, Roi4, Roi4, // 15–19
            Roi5, Roi5, // 20–21
        ];
        let speed = [
            50.0, 50.0, 50.0, 50.0, 50.0, 50.0, 50.0, // straights
            30.0, 30.0, 30.0, 30.0, 30.0, 30.0, 30.0, // right turns
            30.0, 30.0, 30.0, 30.0, 30.0, 30.0, 30.0, // left turns
        ];
        let mut table = KnobTable::new();
        for (i, situation) in TABLE3_SITUATIONS.iter().enumerate() {
            table.insert(*situation, KnobTuning::new(isp[i], roi[i], speed[i]));
        }
        table
    }

    /// The paper's published `τ` values (ms) for the 21 Table III rows,
    /// for comparison against the platform model.
    pub fn paper_table3_tau_ms() -> [f64; 21] {
        [
            23.1, 22.4, 22.5, 22.5, 22.5, 23.0, 23.0, // 1–7
            22.5, 23.1, 23.1, 23.0, 23.1, // 8–12
            23.1, 23.0, // 13–14
            23.1, 23.0, 23.0, 23.1, 23.0, // 15–19
            40.7, 40.7, // 20–21
        ]
    }
}

impl FromIterator<(SituationFeatures, KnobTuning)> for KnobTable {
    fn from_iter<I: IntoIterator<Item = (SituationFeatures, KnobTuning)>>(iter: I) -> Self {
        let mut table = KnobTable::new();
        for (s, t) in iter {
            table.insert(s, t);
        }
        table
    }
}

/// The coarse (road-classifier-only) ROI choice per layout — Case 2's
/// reconfiguration rule.
pub fn coarse_roi_for(layout: RoadLayout) -> Roi {
    match layout {
        RoadLayout::Straight => Roi::Roi1,
        RoadLayout::RightTurn => Roi::Roi2,
        RoadLayout::LeftTurn => Roi::Roi4,
    }
}

/// The fine-grained (road + lane) ROI choice — Case 3's rule: dotted
/// lanes on turns take the shorter, denser ROIs 3/5 (Sec. IV-C).
pub fn fine_roi_for(layout: RoadLayout, form: LaneForm) -> Roi {
    match (layout, form) {
        (RoadLayout::Straight, _) => Roi::Roi1,
        (RoadLayout::RightTurn, LaneForm::Dotted) => Roi::Roi3,
        (RoadLayout::RightTurn, _) => Roi::Roi2,
        (RoadLayout::LeftTurn, LaneForm::Dotted) => Roi::Roi5,
        (RoadLayout::LeftTurn, _) => Roi::Roi4,
    }
}

/// The situation-specific speed rule shared by Cases 2–4: 50 km/h on
/// straights, 30 km/h on turns (Table III).
pub fn speed_for(layout: RoadLayout) -> f64 {
    if layout == RoadLayout::Straight {
        50.0
    } else {
        30.0
    }
}

/// Candidate knob values the characterization sweeps for a situation
/// (Sec. III-B): every ISP configuration, the layout-compatible ROIs,
/// and both speed settings.
pub fn candidate_tunings(situation: &SituationFeatures) -> Vec<KnobTuning> {
    let rois: &[Roi] = match situation.layout {
        RoadLayout::Straight => &[Roi::Roi1],
        RoadLayout::RightTurn => &[Roi::Roi2, Roi::Roi3],
        RoadLayout::LeftTurn => &[Roi::Roi4, Roi::Roi5],
    };
    let speeds: &[f64] = if situation.layout == RoadLayout::Straight { &[50.0] } else { &[30.0] };
    let mut out = Vec::new();
    for &isp in &IspConfig::ALL {
        for &roi in rois {
            for &speed in speeds {
                out.push(KnobTuning::new(isp, roi, speed));
            }
        }
    }
    out
}

/// Summary of the per-situation measured QoC for every candidate —
/// returned by the characterization so harnesses can print the whole
/// trade-off, not just the winner.
pub type CandidateResults = HashMap<SituationFeatures, Vec<(KnobTuning, Option<f64>)>>;

#[cfg(test)]
mod tests {
    use super::*;
    use lkas_scene::situation::{LaneColor, SceneKind};

    #[test]
    fn paper_table3_covers_all_21() {
        let t = KnobTable::paper_table3();
        assert_eq!(t.len(), 21);
        for s in &TABLE3_SITUATIONS {
            assert!(t.get(s).is_some(), "{s}");
        }
    }

    #[test]
    fn paper_table3_spot_checks() {
        let t = KnobTable::paper_table3();
        // Situation 1: straight, white continuous, day → S3, ROI 1, 50.
        let s1 = t.get(&TABLE3_SITUATIONS[0]).unwrap();
        assert_eq!(s1.isp, IspConfig::S3);
        assert_eq!(s1.roi, Roi::Roi1);
        assert_eq!(s1.speed_kmph, 50.0);
        // Situation 20: left, white dotted, day → S2, ROI 5, 30.
        let s20 = t.get(&TABLE3_SITUATIONS[19]).unwrap();
        assert_eq!(s20.isp, IspConfig::S2);
        assert_eq!(s20.roi, Roi::Roi5);
        assert_eq!(s20.speed_kmph, 30.0);
    }

    #[test]
    fn derived_tau_close_to_paper() {
        // The platform model's τ for each Table III row must match the
        // paper's published value within 0.5 ms.
        let t = KnobTable::paper_table3();
        let paper_tau = KnobTable::paper_table3_tau_ms();
        for (i, s) in TABLE3_SITUATIONS.iter().enumerate() {
            let timing = t.get(s).unwrap().schedule(ClassifierSet::all()).timing();
            assert!(
                (timing.tau_ms - paper_tau[i]).abs() < 0.5,
                "situation {}: model τ {} vs paper {}",
                i + 1,
                timing.tau_ms,
                paper_tau[i]
            );
        }
    }

    #[test]
    fn derived_h_matches_paper() {
        // h = 25 ms for rows 1–19, 45 ms for rows 20–21 (Table III).
        let t = KnobTable::paper_table3();
        for (i, s) in TABLE3_SITUATIONS.iter().enumerate() {
            let cfg = t.get(s).unwrap().controller_config(ClassifierSet::all());
            let expected = if i >= 19 { 45.0 } else { 25.0 };
            assert_eq!(cfg.h_ms, expected, "situation {}", i + 1);
            // Footnote 5: the designed τ is grid-ceiled, here = h.
            assert_eq!(cfg.tau_ms, expected, "situation {}", i + 1);
        }
    }

    #[test]
    fn lookup_falls_back_gracefully() {
        let t = KnobTable::paper_table3();
        // A situation outside the 21 (dawn scene): falls back to a
        // same-layout entry.
        let odd = SituationFeatures::new(
            LaneColor::White,
            LaneForm::Continuous,
            RoadLayout::RightTurn,
            SceneKind::Dawn,
        );
        let tuning = t.lookup(&odd);
        assert!(matches!(tuning.roi, Roi::Roi2 | Roi::Roi3));
        // Empty table: safe defaults.
        let empty = KnobTable::new();
        let d = empty.lookup(&odd);
        assert_eq!(d.isp, IspConfig::S0);
        assert_eq!(d.roi, Roi::Roi2);
        assert_eq!(d.speed_kmph, 30.0);
    }

    #[test]
    fn roi_rules() {
        assert_eq!(coarse_roi_for(RoadLayout::Straight), Roi::Roi1);
        assert_eq!(coarse_roi_for(RoadLayout::LeftTurn), Roi::Roi4);
        assert_eq!(fine_roi_for(RoadLayout::LeftTurn, LaneForm::Dotted), Roi::Roi5);
        assert_eq!(fine_roi_for(RoadLayout::LeftTurn, LaneForm::Continuous), Roi::Roi4);
        assert_eq!(fine_roi_for(RoadLayout::RightTurn, LaneForm::Dotted), Roi::Roi3);
        assert_eq!(fine_roi_for(RoadLayout::Straight, LaneForm::Dotted), Roi::Roi1);
    }

    #[test]
    fn candidate_sweep_shape() {
        // Straight: 9 ISP × 1 ROI × 1 speed.
        let straight = candidate_tunings(&TABLE3_SITUATIONS[0]);
        assert_eq!(straight.len(), 9);
        // Turn: 9 ISP × 2 ROIs × 1 speed.
        let turn = candidate_tunings(&TABLE3_SITUATIONS[7]);
        assert_eq!(turn.len(), 18);
    }

    #[test]
    fn insert_replaces() {
        let mut t = KnobTable::new();
        let s = TABLE3_SITUATIONS[0];
        t.insert(s, KnobTuning::conservative());
        t.insert(s, KnobTuning::new(IspConfig::S3, Roi::Roi1, 50.0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&s).unwrap().isp, IspConfig::S3);
    }
}
