//! Frame-path throughput: allocating vs pooled, serial vs tiled.
//!
//! Measures the steady-state cost of each ISP configuration (S0–S8)
//! through three paths — the one-shot allocating `process`, the pooled
//! in-place `process_into` on one thread, and `process_into` with the
//! row-tiled stages fanned out on worker threads — plus the perception
//! pipeline with and without a reused scratch. This is the harness
//! behind the README "Steady-state frame path" table and DESIGN.md §10.
//!
//! Flags: `--iters N` (timed iterations per cell, default 40),
//! `--threads N` (tiled-path worker count, default 4).

use lkas_bench::{arg_value, render_table, write_result};
use lkas_imaging::image::RgbImage;
use lkas_imaging::isp::{IspConfig, IspPipeline};
use lkas_imaging::sensor::{Sensor, SensorConfig};
use lkas_imaging::Scratch;
use lkas_perception::pipeline::{Perception, PerceptionConfig, PerceptionScratch};
use lkas_perception::roi::Roi;
use lkas_scene::camera::Camera;
use lkas_scene::render::SceneRenderer;
use lkas_scene::situation::TABLE3_SITUATIONS;
use lkas_scene::track::Track;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ConfigRow {
    config: String,
    alloc_us: f64,
    pooled_us: f64,
    tiled_us: f64,
    pooled_speedup: f64,
    tiled_speedup: f64,
}

#[derive(Serialize)]
struct Report {
    schema: &'static str,
    iters: usize,
    tile_threads: usize,
    isp: Vec<ConfigRow>,
    perception_alloc_us: f64,
    perception_pooled_us: f64,
    perception_speedup: f64,
}

/// Mean microseconds per call of `f` over `iters` timed iterations
/// (after 3 warm-up calls that also size any pooled buffers).
fn time_us(iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    let iters: usize = arg_value("--iters").and_then(|v| v.parse().ok()).unwrap_or(40);
    let tile_threads: usize = arg_value("--threads").and_then(|v| v.parse().ok()).unwrap_or(4);

    let cam = Camera::default_automotive();
    let track = Track::for_situation(&TABLE3_SITUATIONS[0], 500.0);
    let frame = SceneRenderer::new(cam.clone()).render(&track, 50.0, 0.0, 0.0);
    let raw = Sensor::new(SensorConfig::default(), 1).capture(&frame, 1.0);

    eprintln!("[isp_throughput] {iters} iters/cell, tiled path on {tile_threads} threads");

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for cfg in IspConfig::ALL {
        let isp = IspPipeline::new(cfg);
        let alloc_us = time_us(iters, || {
            std::hint::black_box(isp.process(&raw));
        });
        let mut scratch = Scratch::new();
        let mut out = RgbImage::new(2, 2);
        let pooled_us = time_us(iters, || {
            isp.process_into(&raw, &mut scratch, &mut out);
            std::hint::black_box(&out);
        });
        let mut tiled_scratch = Scratch::with_threads(tile_threads);
        let tiled_us = time_us(iters, || {
            isp.process_into(&raw, &mut tiled_scratch, &mut out);
            std::hint::black_box(&out);
        });
        let row = ConfigRow {
            config: cfg.name().to_string(),
            alloc_us,
            pooled_us,
            tiled_us,
            pooled_speedup: alloc_us / pooled_us,
            tiled_speedup: alloc_us / tiled_us,
        };
        table.push(vec![
            row.config.clone(),
            format!("{alloc_us:.0}"),
            format!("{pooled_us:.0}"),
            format!("{tiled_us:.0}"),
            format!("{:.2}x", row.pooled_speedup),
            format!("{:.2}x", row.tiled_speedup),
        ]);
        rows.push(row);
    }

    let rgb = IspPipeline::new(IspConfig::S0).process(&raw);
    let pr = Perception::new(PerceptionConfig::new(Roi::Roi1), cam);
    let perception_alloc_us = time_us(iters, || {
        std::hint::black_box(pr.process(&rgb).ok());
    });
    let mut pscratch = PerceptionScratch::new();
    let perception_pooled_us = time_us(iters, || {
        std::hint::black_box(pr.process_into(&rgb, &mut pscratch).ok());
    });

    println!(
        "{}",
        render_table(&["config", "alloc µs", "pooled µs", "tiled µs", "pooled", "tiled"], &table,)
    );
    println!(
        "perception: alloc {perception_alloc_us:.0} µs, pooled {perception_pooled_us:.0} µs \
         ({:.2}x)",
        perception_alloc_us / perception_pooled_us
    );

    write_result(
        "isp_throughput",
        &Report {
            schema: "lkas-isp-throughput-v1",
            iters,
            tile_threads,
            isp: rows,
            perception_alloc_us,
            perception_pooled_us,
            perception_speedup: perception_alloc_us / perception_pooled_us,
        },
    );
}
