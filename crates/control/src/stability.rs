//! Switched-system stability: CQLF search (paper Sec. III-D).
//!
//! The runtime reconfiguration switches between situation-specific
//! controllers with different `(h_i, τ_i)` designs. Following the
//! paper's references [15], [16], stability under arbitrary switching is
//! certified by a *common quadratic Lyapunov function* (CQLF): a single
//! `P ≻ 0` with `AᵢᵀPAᵢ − P ≺ 0` for every closed-loop mode `Aᵢ`.
//!
//! [`find_cqlf`] searches for such a `P` by solving each mode's
//! discrete Lyapunov equation and testing the candidates (including
//! their normalized sum, which frequently certifies families of
//! similarly damped modes). The search is sound — a returned `P` always
//! satisfies the inequalities — but incomplete: `None` means "no
//! certificate found", not "unstable".

use lkas_linalg::{eig, lyapunov, Mat};

/// Margin for the strict Lyapunov decrease: we require
/// `λmax(AᵀPA − P) < −margin·λmin(P)` scaled check via eigenvalues.
const DECREASE_TOL: f64 = 1e-9;

/// Verifies that `P` is a CQLF for all `modes`: `P ≻ 0` and
/// `AᵢᵀPAᵢ − P ≺ 0`.
pub fn verify_cqlf(modes: &[Mat], p: &Mat) -> bool {
    if !p.is_positive_definite() {
        return false;
    }
    modes.iter().all(|a| {
        let Ok(apa) = a.transpose().matmul(p).and_then(|m| m.matmul(a)) else {
            return false;
        };
        let Ok(mut diff) = apa.sub_mat(p) else { return false };
        diff.symmetrize();
        // Negative definite ⇔ −diff positive definite (with tolerance).
        let mut neg = diff.scale(-1.0);
        for i in 0..neg.rows() {
            neg[(i, i)] -= DECREASE_TOL;
        }
        neg.is_positive_definite()
    })
}

/// Searches for a common quadratic Lyapunov function across closed-loop
/// modes.
///
/// Candidates tried, in order:
/// 1. each mode's own Lyapunov solution `Pᵢ` (with `Q = I`),
/// 2. the sum `Σ Pᵢ`,
/// 3. iterative refinement: `P ← Σᵢ AᵢᵀPAᵢ/N + I` (a contraction
///    whenever the switched system is "jointly" stable enough), up to 64
///    rounds.
///
/// Returns a verified `P`, or `None` if no candidate certifies.
///
/// # Example
///
/// ```
/// use lkas_control::stability::{find_cqlf, verify_cqlf};
/// use lkas_linalg::Mat;
///
/// let modes = vec![Mat::diag(&[0.5, 0.8]), Mat::diag(&[0.7, 0.3])];
/// let p = find_cqlf(&modes).expect("diagonal stable modes share a CQLF");
/// assert!(verify_cqlf(&modes, &p));
/// ```
pub fn find_cqlf(modes: &[Mat]) -> Option<Mat> {
    if modes.is_empty() {
        return None;
    }
    let n = modes[0].rows();
    // Every mode must itself be Schur; otherwise no CQLF can exist.
    for a in modes {
        if a.rows() != n || !a.is_square() {
            return None;
        }
        if !eig::is_schur_stable(a).unwrap_or(false) {
            return None;
        }
    }
    // Search with a relative contraction margin ε: find P for the
    // inflated modes Aᵢ/√(1−ε), so the returned P certifies the real
    // modes with slack ε·P (robust against the tiny mode differences of
    // a (h, τ) family). Fall back to smaller margins if the inflated
    // family is too hot.
    for eps in [0.04_f64, 0.015, 0.005, 0.0] {
        let factor = 1.0 / (1.0 - eps).sqrt();
        let scaled: Vec<Mat> = modes.iter().map(|a| a.scale(factor)).collect();
        if !scaled.iter().all(|a| eig::is_schur_stable(a).unwrap_or(false)) {
            continue;
        }
        if let Some(p) = find_cqlf_inner(&scaled) {
            if verify_cqlf(modes, &p) {
                return Some(p);
            }
        }
    }
    None
}

/// The candidate pipeline on an already-margin-inflated mode family.
fn find_cqlf_inner(modes: &[Mat]) -> Option<Mat> {
    let n = modes[0].rows();
    let identity = Mat::identity(n);

    // Candidate 1: per-mode Lyapunov solutions.
    let mut per_mode: Vec<Mat> = Vec::new();
    for a in modes {
        if let Ok(p) = lyapunov::solve_discrete_lyapunov(a, &identity) {
            if verify_cqlf(modes, &p) {
                return Some(p);
            }
            per_mode.push(p);
        }
    }
    // Candidate 2: the sum of the per-mode solutions.
    if !per_mode.is_empty() {
        let mut sum = per_mode[0].clone();
        for p in &per_mode[1..] {
            sum = sum.add_mat(p).ok()?;
        }
        if verify_cqlf(modes, &sum) {
            return Some(sum);
        }
    }
    // Candidate 3: multiplicative-weights search. Maintain mode weights
    // θᵢ; solve the weighted Lyapunov fixed point
    // `P = I + Σ θᵢ AᵢᵀPAᵢ` and boost the weights of violating modes.
    let n_modes = modes.len();
    let mut theta = vec![1.0 / n_modes as f64; n_modes];
    for _round in 0..60 {
        // Fixed-point solve of the weighted equation.
        let mut p = identity.clone();
        for _ in 0..400 {
            let mut next = identity.clone();
            for (a, &w) in modes.iter().zip(&theta) {
                let apa = a.transpose().matmul(&p).ok()?.matmul(a).ok()?;
                next = next.add_mat(&apa.scale(w)).ok()?;
            }
            next.symmetrize();
            let diff = next.sub_mat(&p).ok()?.max_abs();
            let scale = next.max_abs().max(1.0);
            p = next;
            if !p.is_finite() {
                break;
            }
            if diff < 1e-11 * scale {
                break;
            }
        }
        if !p.is_finite() {
            // Weighted joint dynamics too hot; cool the weights.
            for w in &mut theta {
                *w *= 0.5;
            }
            continue;
        }
        if verify_cqlf(modes, &p) {
            return Some(p);
        }
        // Estimate each mode's violation λmax(AᵀPA − P) and reweight.
        let mut violations = Vec::with_capacity(n_modes);
        for a in modes {
            let apa = a.transpose().matmul(&p).ok()?.matmul(a).ok()?;
            let mut diff = apa.sub_mat(&p).ok()?;
            diff.symmetrize();
            violations.push(sym_lambda_max(&diff));
        }
        let vmax = violations.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if vmax <= 0.0 {
            // Numerically certified but verify_cqlf's tolerance said no;
            // nudge and re-verify once.
            let mut padded = p.clone();
            for i in 0..padded.rows() {
                padded[(i, i)] += 1e-9;
            }
            if verify_cqlf(modes, &padded) {
                return Some(padded);
            }
        }
        let norm = p.max_abs().max(1.0);
        for (w, v) in theta.iter_mut().zip(&violations) {
            *w *= (1.5 * v / norm).exp().clamp(0.25, 4.0);
        }
        let total: f64 = theta.iter().sum();
        for w in &mut theta {
            *w /= total;
        }
    }
    None
}

/// Largest eigenvalue of a symmetric matrix via shifted power iteration.
fn sym_lambda_max(m: &Mat) -> f64 {
    let n = m.rows();
    let shift = m.norm_1() + 1.0;
    // Power iteration on M + shift·I (positive definite dominant).
    let mut v = vec![1.0 / (n as f64).sqrt(); n];
    let mut lambda = 0.0;
    for _ in 0..200 {
        let mut next = vec![0.0f64; n];
        for i in 0..n {
            let mut acc = shift * v[i];
            for j in 0..n {
                acc += m[(i, j)] * v[j];
            }
            next[i] = acc;
        }
        let norm: f64 = next.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return -shift;
        }
        for x in &mut next {
            *x /= norm;
        }
        let prev = lambda;
        lambda = norm;
        v = next;
        if (lambda - prev).abs() < 1e-12 * lambda.abs().max(1.0) {
            break;
        }
    }
    lambda - shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stable_mode_always_certifies() {
        let a = Mat::from_rows(&[&[0.5, 0.2], &[0.0, 0.6]]);
        let p = find_cqlf(std::slice::from_ref(&a)).expect("stable mode");
        assert!(verify_cqlf(&[a], &p));
    }

    #[test]
    fn unstable_mode_rejected() {
        let good = Mat::diag(&[0.5, 0.5]);
        let bad = Mat::diag(&[1.1, 0.5]);
        assert!(find_cqlf(&[good, bad]).is_none());
    }

    #[test]
    fn commuting_stable_modes_certify() {
        // Diagonal (hence commuting) stable matrices always share a CQLF.
        let modes = vec![
            Mat::diag(&[0.9, 0.2, 0.5]),
            Mat::diag(&[0.1, 0.8, 0.6]),
            Mat::diag(&[0.4, 0.4, 0.9]),
        ];
        let p = find_cqlf(&modes).expect("commuting modes");
        assert!(verify_cqlf(&modes, &p));
    }

    #[test]
    fn verify_rejects_non_pd() {
        let a = Mat::diag(&[0.5, 0.5]);
        let p = Mat::diag(&[1.0, -1.0]);
        assert!(!verify_cqlf(&[a], &p));
    }

    #[test]
    fn verify_rejects_non_decreasing() {
        // P = I does not certify a rotation-scaled matrix with ρ close
        // to 1 along a skewed direction.
        let a = Mat::from_rows(&[&[0.0, 2.0], &[-0.3, 0.0]]); // ρ(A)=0.77 but ‖A‖ > 1
        let p = Mat::identity(2);
        assert!(!verify_cqlf(&[a.clone()], &p));
        // The proper Lyapunov solution certifies it.
        let found = find_cqlf(std::slice::from_ref(&a)).expect("stable");
        assert!(verify_cqlf(&[a], &found));
    }

    #[test]
    fn similar_damped_modes_certify() {
        // Two moderately damped rotations with slightly different
        // frequencies — the shape of the paper's (h, τ) mode family.
        let rot = |r: f64, th: f64| {
            Mat::from_rows(&[&[r * th.cos(), -r * th.sin()], &[r * th.sin(), r * th.cos()]])
        };
        let modes = vec![rot(0.8, 0.3), rot(0.85, 0.25), rot(0.75, 0.4)];
        let p = find_cqlf(&modes).expect("similar modes");
        assert!(verify_cqlf(&modes, &p));
    }

    #[test]
    fn empty_input_returns_none() {
        assert!(find_cqlf(&[]).is_none());
    }
}
