#!/bin/bash
# Regenerates every table and figure of the paper plus the ablation
# studies. On a many-core machine drop the --quick/--half-res flags and
# raise --seeds. Outputs: stdout tables per harness, JSON in results/,
# trained artifacts in artifacts/.
#
# Sharded mode: `./run_all_experiments.sh --shard I/N [--resume]` runs
# only the shardable sweeps (table3_characterization and
# robustness_campaign) on slice I of N, checkpointing each to
# artifacts/*.ckpt.jsonl so a killed shard resumes with --resume
# instead of re-evaluating. Run every shard 0..N-1 (any mix of
# machines or terminals), then fold the shard artifacts back into the
# byte-identical reports:
#
#   cargo run --release -p lkas-bench --bin table3_characterization -- \
#     merge artifacts/table3_shard_*.json
#   cargo run --release -p lkas-bench --bin robustness_campaign -- \
#     merge artifacts/robustness_shard_*.json \
#     --metrics-out artifacts/telemetry_robustness.json
#
# Fleet mode: `./run_all_experiments.sh --fleet` runs the robustness
# campaign through the fleet daemon (fleetd/fleetctl) instead of the
# batch binary: identical report bytes, but repeat invocations are
# answered from the daemon's fingerprint cache and tenant knob stores
# persist under artifacts/. See DESIGN.md §14.
set -e
cd "$(dirname "$0")"

SHARD=""
RESUME=""
FLEET=""
while [ $# -gt 0 ]; do
  case "$1" in
    --shard)
      SHARD="$2"
      shift 2
      ;;
    --resume)
      RESUME="--resume"
      shift
      ;;
    --fleet)
      FLEET=1
      shift
      ;;
    *)
      echo "usage: $0 [--shard I/N [--resume]] [--fleet]" >&2
      exit 2
      ;;
  esac
done

if [ -n "$SHARD" ]; then
  TAG="${SHARD/\//of}"
  cargo run --release -p lkas-bench --bin table3_characterization -- \
    --shard "$SHARD" $RESUME \
    --checkpoint "artifacts/table3_${TAG}.ckpt.jsonl" \
    --shard-out "artifacts/table3_shard_${TAG}.json"
  cargo run --release -p lkas-bench --bin robustness_campaign -- \
    --seed 7 --shard "$SHARD" $RESUME \
    --checkpoint "artifacts/robustness_${TAG}.ckpt.jsonl" \
    --shard-out "artifacts/robustness_shard_${TAG}.json"
  echo "shard $SHARD done — once every shard has run, merge as shown in the header."
  exit 0
fi

cargo run --release -p lkas-bench --bin table5_cases
cargo run --release -p lkas-bench --bin table2_runtimes
cargo run --release -p lkas-bench --bin fig1_tradeoff
cargo run --release -p lkas-bench --bin table4_classifiers
cargo run --release -p lkas-bench --bin table3_characterization
cargo run --release -p lkas-bench --bin fig6_static -- --metrics-out artifacts/telemetry_fig6_static.json
cargo run --release -p lkas-bench --bin fig8_dynamic -- --seeds 3 --metrics-out artifacts/telemetry_fig8_dynamic.json --trace-out artifacts/fig8_dynamic.trace.json
cargo run --release -p lkas-bench --bin lqg_study
cargo run --release -p lkas-bench --bin ablation_isp
cargo run --release -p lkas-bench --bin ablation_invocation
cargo run --release -p lkas-bench --bin isp_throughput
if [ -n "$FLEET" ]; then
  # Serve the campaign through the fleet daemon: same bytes as the
  # batch binary, but cached for repeat runs.
  cargo build --release -p lkas-bench --bin fleetd --bin fleetctl
  ./target/release/fleetd --addr 127.0.0.1:0 --store-dir artifacts \
    > artifacts/fleetd.log 2>> artifacts/fleetd.log &
  FLEETD_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^fleetd listening on //p' artifacts/fleetd.log)
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  [ -n "$ADDR" ] || { echo "fleetd did not come up" >&2; exit 1; }
  ./target/release/fleetctl submit --addr "$ADDR" --tenant experiments \
    --spec '{"kind": "campaign", "seed": 7}' \
    --out artifacts/robustness_report.json
  ./target/release/fleetctl shutdown --addr "$ADDR"
  wait "$FLEETD_PID"
else
  cargo run --release -p lkas-bench --bin robustness_campaign -- --seed 7 --metrics-out artifacts/telemetry_robustness.json
fi
