//! Offline stand-in for `serde`.
//!
//! The evaluation sandbox has no access to crates.io, so this workspace
//! vendors a minimal, std-only implementation of the serde surface it
//! actually uses: `#[derive(Serialize, Deserialize)]` on plain structs
//! and enums, driven through a JSON-shaped [`Value`] data model that
//! `serde_json` (also vendored) renders and parses.
//!
//! This is intentionally **not** the real serde architecture: instead of
//! the visitor-based zero-copy model, every serialization goes through
//! an owned [`Value`] tree. That is plenty for the workspace's artifact
//! and result files (classifier bundles, knob tables, telemetry
//! snapshots) and keeps the whole dependency closure buildable offline.
//!
//! JSON conventions match upstream serde so existing artifacts parse:
//! structs are objects, unit enum variants are strings, newtype variants
//! are single-key objects (`{"Variant": value}`), tuple variants carry
//! arrays, struct variants carry objects, and tuples are arrays.

mod impls;
pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a JSON-shaped value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field is missing from the
    /// serialized object. `Option<T>` overrides this to `None`
    /// (matching serde's treatment of optional fields); everything else
    /// reports a missing-field error.
    ///
    /// # Errors
    ///
    /// Returns a missing-field [`Error`] unless overridden.
    fn absent(field: &str) -> Result<Self, Error> {
        Err(Error::new(format!("missing field `{field}`")))
    }
}

/// A (de)serialization error: a plain message, like `serde_json`'s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Support functions used by the generated derive code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// The fields of an object value, or a shape error naming `ty`.
    pub fn as_object<'v>(value: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
        match value {
            Value::Object(fields) => Ok(fields),
            other => Err(Error::new(format!("expected object for `{ty}`, found {}", other.kind()))),
        }
    }

    /// The elements of an array value of exactly `len` elements.
    pub fn as_array<'v>(value: &'v Value, len: usize, ty: &str) -> Result<&'v [Value], Error> {
        match value {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(Error::new(format!(
                "expected {len} elements for `{ty}`, found {}",
                items.len()
            ))),
            other => Err(Error::new(format!("expected array for `{ty}`, found {}", other.kind()))),
        }
    }

    /// Looks up and deserializes a struct field, falling back to
    /// [`Deserialize::absent`] when the key is missing.
    pub fn field<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, Error> {
        match fields.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| Error::new(format!("field `{name}`: {}", e.message())))
            }
            None => T::absent(name),
        }
    }

    /// Error for an unknown enum variant name.
    pub fn unknown_variant(ty: &str, variant: &str) -> Error {
        Error::new(format!("unknown variant `{variant}` for `{ty}`"))
    }

    /// Error for an enum value of the wrong shape.
    pub fn bad_enum_shape(ty: &str, value: &Value) -> Error {
        Error::new(format!(
            "expected string or single-key object for `{ty}`, found {}",
            value.kind()
        ))
    }
}
