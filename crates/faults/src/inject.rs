//! RAW-frame fault application: the bridge between a [`crate::FaultPlan`]
//! and the Bayer-domain corruption primitives of [`lkas_imaging::sensor`].

use lkas_imaging::image::RawImage;
use lkas_imaging::sensor::{inject_exposure_glitch, inject_hot_pixels, inject_row_banding};
use serde::{Deserialize, Serialize};

/// A Bayer-domain corruption mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BayerFaultKind {
    /// A fraction `density` of photosites saturates to full well.
    HotPixels {
        /// Expected fraction of affected photosites.
        density: f32,
    },
    /// Every `period`-th row is scaled by `gain` (readout interference).
    RowBanding {
        /// Row period of the banding pattern.
        period: usize,
        /// Gain applied to affected rows.
        gain: f32,
    },
    /// The whole frame is scaled by `gain` and clipped (AE glitch).
    ExposureGlitch {
        /// Exposure multiplier (>1 clips highlights, <1 crushes).
        gain: f32,
    },
}

/// Mixes a plan seed and a cycle index into the per-cycle RNG seed used
/// by stochastic corruptions (hot-pixel placement). Pure and collision
/// -scattered (splitmix64 finalizer), so per-cycle corruption is
/// deterministic yet decorrelated across cycles.
pub fn derive_cycle_seed(plan_seed: u64, cycle: u64) -> u64 {
    let mut z = plan_seed ^ cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies a Bayer corruption to a captured RAW frame. The hot-pixel
/// pattern varies per cycle (a real defect map would be static, but a
/// per-cycle pattern is the harsher test: perception cannot learn to
/// mask it), while banding phase walks with the cycle index the way
/// readout interference drifts.
pub fn apply_bayer_fault(kind: BayerFaultKind, raw: &mut RawImage, plan_seed: u64, cycle: u64) {
    match kind {
        BayerFaultKind::HotPixels { density } => {
            inject_hot_pixels(raw, density, derive_cycle_seed(plan_seed, cycle));
        }
        BayerFaultKind::RowBanding { period, gain } => {
            let phase = if period == 0 { 0 } else { (cycle as usize) % period };
            inject_row_banding(raw, period, gain, phase);
        }
        BayerFaultKind::ExposureGlitch { gain } => inject_exposure_glitch(raw, gain),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_raw(seed: u64) -> RawImage {
        let mut raw = RawImage::new(16, 16);
        for (i, v) in raw.as_mut_slice().iter_mut().enumerate() {
            *v = ((derive_cycle_seed(seed, i as u64) % 1000) as f32) / 2000.0;
        }
        raw
    }

    #[test]
    fn cycle_seed_is_pure_and_scattered() {
        assert_eq!(derive_cycle_seed(7, 3), derive_cycle_seed(7, 3));
        assert_ne!(derive_cycle_seed(7, 3), derive_cycle_seed(7, 4));
        assert_ne!(derive_cycle_seed(7, 3), derive_cycle_seed(8, 3));
    }

    #[test]
    fn bayer_application_is_deterministic_per_cycle() {
        for kind in [
            BayerFaultKind::HotPixels { density: 0.1 },
            BayerFaultKind::RowBanding { period: 3, gain: 0.4 },
            BayerFaultKind::ExposureGlitch { gain: 2.0 },
        ] {
            let mut a = noisy_raw(1);
            let mut b = noisy_raw(1);
            apply_bayer_fault(kind, &mut a, 42, 9);
            apply_bayer_fault(kind, &mut b, 42, 9);
            assert_eq!(a, b, "{kind:?} must replay identically");
            let clean = noisy_raw(1);
            assert_ne!(a, clean, "{kind:?} must actually corrupt the frame");
        }
    }

    #[test]
    fn hot_pixel_pattern_moves_between_cycles() {
        let mut a = noisy_raw(1);
        let mut b = noisy_raw(1);
        apply_bayer_fault(BayerFaultKind::HotPixels { density: 0.05 }, &mut a, 42, 1);
        apply_bayer_fault(BayerFaultKind::HotPixels { density: 0.05 }, &mut b, 42, 2);
        assert_ne!(a, b, "the defect pattern is per-cycle");
    }
}
