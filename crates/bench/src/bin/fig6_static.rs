//! Fig. 6 — static per-situation robustness and QoC.
//!
//! Runs Cases 1–4 on each of the 21 Table III situations separately
//! (single-sector tracks) and reports the MAE per (situation, case),
//! normalized to Case 3 — the paper's presentation. Crashed runs are
//! reported as `FAIL`, reproducing the robustness half of the figure.
//!
//! By default the situation source is the trained classifier bundle
//! (cached by `table4_classifiers`, or trained on the fly at quick
//! scale); `--oracle` uses ground-truth situation decisions. Pass
//! `--characterized` to use the regenerated Table III from
//! `table3_characterization` instead of the paper's tunings.
//!
//! Usage: `cargo run --release -p lkas-bench --bin fig6_static [--oracle] [--characterized]`

use lkas::cases::Case;
use lkas::knobs::KnobTable;
use lkas::TABLE3_SITUATIONS;
use lkas_bench::{
    arg_value, default_threads, load_or_train_bundle, oracle_flag, render_table, run_hil_jobs,
    write_metrics, write_result, HilJob, Metrics, ARTIFACTS_DIR,
};
use lkas_scene::camera::Camera;
use lkas_scene::track::Track;
use serde::Serialize;

const CASES: [Case; 4] = [Case::Case1, Case::Case2, Case::Case3, Case::Case4];

#[derive(Serialize)]
struct SituationRow {
    situation: usize,
    description: String,
    mae: [Option<f64>; 4],
    normalized_to_case3: [Option<f64>; 4],
    crashed: [bool; 4],
}

fn main() {
    let bundle = if oracle_flag() { None } else { Some(load_or_train_bundle()) };
    let knob_table = load_knob_table();
    let threads =
        arg_value("--threads").and_then(|v| v.parse().ok()).unwrap_or_else(default_threads);
    let track_length: f64 = arg_value("--length").and_then(|v| v.parse().ok()).unwrap_or(250.0);
    // On single-core machines `--half-res` quarters the per-frame cost;
    // the case orderings are unchanged (see EXPERIMENTS.md).
    let camera = if std::env::args().any(|a| a == "--half-res") {
        Camera::new(256, 128, 150.0, 1.3, 6.0_f64.to_radians())
    } else {
        Camera::default_automotive()
    };

    let metrics = std::sync::Arc::new(Metrics::new());
    let mut jobs = Vec::new();
    for (si, situation) in TABLE3_SITUATIONS.iter().enumerate() {
        for case in CASES {
            let track = Track::for_situation(situation, track_length);
            let mut job = HilJob::new(
                format!("situation {} / {}", si + 1, case),
                case,
                track,
                bundle.as_ref(),
                1000 + si as u64,
            )
            .with_metrics(&metrics);
            job.config.knob_table = knob_table.clone();
            job.config.camera = camera.clone();
            jobs.push(job);
        }
    }
    let results = run_hil_jobs(jobs, threads);

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (si, situation) in TABLE3_SITUATIONS.iter().enumerate() {
        let slice = &results[si * CASES.len()..(si + 1) * CASES.len()];
        let mae: Vec<Option<f64>> =
            slice.iter().map(|r| if r.crashed { None } else { r.overall_mae() }).collect();
        let case3 = mae[2];
        let norm: Vec<Option<f64>> = mae
            .iter()
            .map(|m| match (m, case3) {
                (Some(v), Some(base)) if base > 0.0 => Some(v / base),
                _ => None,
            })
            .collect();
        let cell = |i: usize| match (mae[i], norm[i]) {
            (Some(_), Some(n)) => format!("{n:.2}"),
            (Some(v), None) => format!("{v:.3}m"),
            _ => "FAIL".to_string(),
        };
        rows.push(vec![
            format!("{}", si + 1),
            situation.describe(),
            cell(0),
            cell(1),
            cell(2),
            cell(3),
        ]);
        json_rows.push(SituationRow {
            situation: si + 1,
            description: situation.describe(),
            mae: [mae[0], mae[1], mae[2], mae[3]],
            normalized_to_case3: [norm[0], norm[1], norm[2], norm[3]],
            crashed: [slice[0].crashed, slice[1].crashed, slice[2].crashed, slice[3].crashed],
        });
    }
    println!("Fig. 6 — static per-situation MAE normalized to Case 3 (FAIL = lane departure)");
    println!(
        "{}",
        render_table(&["#", "situation", "case 1", "case 2", "case 3", "case 4"], &rows)
    );

    // Paper-shape summary: which situations fail per case.
    for (ci, case) in CASES.iter().enumerate() {
        let fails: Vec<String> =
            json_rows.iter().filter(|r| r.crashed[ci]).map(|r| r.situation.to_string()).collect();
        println!(
            "{case}: {} failures{}",
            fails.len(),
            if fails.is_empty() {
                String::new()
            } else {
                format!(" (situations {})", fails.join(", "))
            }
        );
    }
    let better = json_rows
        .iter()
        .filter(|r| matches!((r.mae[3], r.mae[2]), (Some(a), Some(b)) if a < b))
        .count();
    let comparable = json_rows.iter().filter(|r| r.mae[3].is_some() && r.mae[2].is_some()).count();
    println!("case 4 beats case 3 in {better}/{comparable} comparable situations (paper: all but situation 15)");
    write_result("fig6_static", &json_rows);
    write_metrics("fig6_static", &metrics);
}

fn load_knob_table() -> KnobTable {
    if std::env::args().any(|a| a == "--characterized") {
        let path = std::path::Path::new(ARTIFACTS_DIR).join("table3.json");
        let json = std::fs::read_to_string(&path)
            .expect("run table3_characterization first to produce artifacts/table3.json");
        serde_json::from_str(&json).expect("parse regenerated Table III")
    } else {
        KnobTable::paper_table3()
    }
}
