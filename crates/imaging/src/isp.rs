//! The five-stage ISP pipeline and its approximation knobs (Table II).
//!
//! Stage order follows the paper's Fig. 3(a): demosaic → denoise →
//! color map → gamut map → tone map. Every configuration S0–S8 keeps the
//! demosaic (a Bayer frame is useless downstream otherwise) and skips a
//! subset of the remaining stages; skipping stages reduces latency
//! (profiled runtimes live in `lkas-platform`) at the cost of image
//! quality, and how much quality matters depends on the *situation* —
//! which is exactly the trade-off the paper's method exploits.

use crate::image::{BayerChannel, RawImage, RgbImage};
use serde::{Deserialize, Serialize};

/// One ISP stage, in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IspStage {
    /// DM — demosaic (Bayer → RGB, bilinear).
    Demosaic,
    /// DN — denoise (3×3 Gaussian per channel).
    Denoise,
    /// CM — color map (color-correction matrix; inverts the sensor
    /// crosstalk).
    ColorMap,
    /// GM — gamut map (soft-knee compression of out-of-gamut values).
    GamutMap,
    /// TM — tone map (sRGB-like gamma encoding).
    ToneMap,
}

impl IspStage {
    /// The paper's two-letter acronym for this stage.
    pub fn acronym(self) -> &'static str {
        match self {
            IspStage::Demosaic => "DM",
            IspStage::Denoise => "DN",
            IspStage::ColorMap => "CM",
            IspStage::GamutMap => "GM",
            IspStage::ToneMap => "TM",
        }
    }
}

/// An ISP approximation configuration: which stages run.
///
/// `S0` is the exact pipeline; `S1`–`S8` are the approximations of the
/// paper's Table II. The demosaic stage is part of every configuration.
///
/// # Example
///
/// ```
/// use lkas_imaging::isp::{IspConfig, IspStage};
///
/// assert_eq!(IspConfig::S0.stages().len(), 5);
/// assert!(IspConfig::S7.stages().contains(&IspStage::GamutMap));
/// assert!(!IspConfig::S7.stages().contains(&IspStage::ToneMap));
/// assert_eq!(IspConfig::S3.name(), "S3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are the paper's opaque config IDs
pub enum IspConfig {
    S0,
    S1,
    S2,
    S3,
    S4,
    S5,
    S6,
    S7,
    S8,
}

impl IspConfig {
    /// All nine configurations in Table II order.
    pub const ALL: [IspConfig; 9] = [
        IspConfig::S0,
        IspConfig::S1,
        IspConfig::S2,
        IspConfig::S3,
        IspConfig::S4,
        IspConfig::S5,
        IspConfig::S6,
        IspConfig::S7,
        IspConfig::S8,
    ];

    /// The stages this configuration executes (Table II).
    pub fn stages(self) -> &'static [IspStage] {
        use IspStage::*;
        match self {
            IspConfig::S0 => &[Demosaic, Denoise, ColorMap, GamutMap, ToneMap],
            IspConfig::S1 => &[Demosaic, ColorMap, GamutMap, ToneMap],
            IspConfig::S2 => &[Demosaic, Denoise, GamutMap, ToneMap],
            IspConfig::S3 => &[Demosaic, Denoise, ColorMap, ToneMap],
            IspConfig::S4 => &[Demosaic, Denoise, ColorMap, GamutMap],
            IspConfig::S5 => &[Demosaic, Denoise],
            IspConfig::S6 => &[Demosaic, ColorMap],
            IspConfig::S7 => &[Demosaic, GamutMap],
            IspConfig::S8 => &[Demosaic, ToneMap],
        }
    }

    /// The paper's name for this configuration (`"S0"` … `"S8"`).
    pub fn name(self) -> &'static str {
        match self {
            IspConfig::S0 => "S0",
            IspConfig::S1 => "S1",
            IspConfig::S2 => "S2",
            IspConfig::S3 => "S3",
            IspConfig::S4 => "S4",
            IspConfig::S5 => "S5",
            IspConfig::S6 => "S6",
            IspConfig::S7 => "S7",
            IspConfig::S8 => "S8",
        }
    }

    /// `true` if the given stage is part of this configuration.
    pub fn has_stage(self, stage: IspStage) -> bool {
        self.stages().contains(&stage)
    }
}

impl std::fmt::Display for IspConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of code levels of the ISP output (8-bit RGB, as produced by the
/// real pipeline and consumed by TensorRT in the paper's setup).
pub const OUTPUT_LEVELS: u32 = 256;

/// A configurable ISP pipeline.
///
/// # Example
///
/// ```
/// use lkas_imaging::image::RgbImage;
/// use lkas_imaging::isp::{IspConfig, IspPipeline};
/// use lkas_imaging::sensor::{Sensor, SensorConfig};
///
/// let scene = RgbImage::filled(16, 16, [0.2, 0.6, 0.2]);
/// let raw = Sensor::new(SensorConfig::default(), 0).capture(&scene, 1.0);
/// let full = IspPipeline::new(IspConfig::S0).process(&raw);
/// let approx = IspPipeline::new(IspConfig::S5).process(&raw);
/// assert_eq!(full.width(), approx.width());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IspPipeline {
    config: IspConfig,
}

impl IspPipeline {
    /// Creates a pipeline running the given configuration.
    pub fn new(config: IspConfig) -> Self {
        IspPipeline { config }
    }

    /// The active configuration.
    pub fn config(&self) -> IspConfig {
        self.config
    }

    /// Replaces the active configuration (used by the runtime
    /// reconfiguration logic; the swap is free, matching a register write
    /// on the real ISP).
    pub fn set_config(&mut self, config: IspConfig) {
        self.config = config;
    }

    /// Runs the configured stages on a RAW frame and returns the
    /// quantized 8-bit-equivalent RGB output.
    pub fn process(&self, raw: &RawImage) -> RgbImage {
        let mut rgb = demosaic(raw);
        for stage in self.config.stages() {
            match stage {
                IspStage::Demosaic => {} // always executed above
                IspStage::Denoise => denoise(&mut rgb),
                IspStage::ColorMap => color_map(&mut rgb),
                IspStage::GamutMap => gamut_map(&mut rgb),
                IspStage::ToneMap => tone_map(&mut rgb),
            }
        }
        rgb.quantize(OUTPUT_LEVELS);
        rgb
    }
}

/// Bilinear demosaic of an RGGB Bayer mosaic.
pub fn demosaic(raw: &RawImage) -> RgbImage {
    let (w, h) = (raw.width(), raw.height());
    let mut out = RgbImage::new(w, h);
    // Average of the neighbors (clamped to the frame) holding channel `c`.
    let sample = |cx: i64, cy: i64, chan: BayerChannel| -> f32 {
        let mut sum = 0.0;
        let mut cnt = 0u32;
        for dy in -1..=1_i64 {
            for dx in -1..=1_i64 {
                let x = cx + dx;
                let y = cy + dy;
                if x < 0 || y < 0 || x >= w as i64 || y >= h as i64 {
                    continue;
                }
                let (x, y) = (x as usize, y as usize);
                let ch = raw.channel_at(x, y);
                let is_green = matches!(ch, BayerChannel::GreenR | BayerChannel::GreenB);
                let want_green = matches!(chan, BayerChannel::GreenR | BayerChannel::GreenB);
                if ch == chan || (is_green && want_green) {
                    sum += raw.get(x, y);
                    cnt += 1;
                }
            }
        }
        if cnt == 0 {
            0.0
        } else {
            sum / cnt as f32
        }
    };
    for y in 0..h {
        for x in 0..w {
            let r = sample(x as i64, y as i64, BayerChannel::Red);
            let g = sample(x as i64, y as i64, BayerChannel::GreenR);
            let b = sample(x as i64, y as i64, BayerChannel::Blue);
            out.set(x, y, [r, g, b]);
        }
    }
    out
}

/// 3×3 Gaussian blur (σ ≈ 0.85) applied per channel, in place.
pub fn denoise(img: &mut RgbImage) {
    const K: [f32; 3] = [0.25, 0.5, 0.25]; // separable binomial kernel
    let (w, h) = (img.width(), img.height());
    let src = img.clone();
    // Horizontal pass into `img`, vertical pass back.
    let mut tmp = RgbImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = [0.0f32; 3];
            for (t, &k) in K.iter().enumerate() {
                let xi = (x as i64 + t as i64 - 1).clamp(0, w as i64 - 1) as usize;
                let px = src.get(xi, y);
                for c in 0..3 {
                    acc[c] += k * px[c];
                }
            }
            tmp.set(x, y, acc);
        }
    }
    for y in 0..h {
        for x in 0..w {
            let mut acc = [0.0f32; 3];
            for (t, &k) in K.iter().enumerate() {
                let yi = (y as i64 + t as i64 - 1).clamp(0, h as i64 - 1) as usize;
                let px = tmp.get(x, yi);
                for c in 0..3 {
                    acc[c] += k * px[c];
                }
            }
            img.set(x, y, acc);
        }
    }
}

/// Color-correction matrix: the inverse of the sensor crosstalk, mapping
/// sensor RGB back to scene-referred RGB. Applied in place.
pub fn color_map(img: &mut RgbImage) {
    let ccm = ccm();
    for px in img.as_mut_slice().chunks_exact_mut(3) {
        let v = [px[0], px[1], px[2]];
        for (c, row) in ccm.iter().enumerate() {
            px[c] = row[0] * v[0] + row[1] * v[1] + row[2] * v[2];
        }
    }
}

/// The 3×3 color-correction matrix (inverse of
/// [`crate::sensor::CROSSTALK`]).
pub fn ccm() -> [[f32; 3]; 3] {
    invert3(crate::sensor::CROSSTALK)
}

fn invert3(m: [[f32; 3]; 3]) -> [[f32; 3]; 3] {
    let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    assert!(det.abs() > 1e-9, "crosstalk matrix must be invertible");
    let inv_det = 1.0 / det;
    let mut inv = [[0.0f32; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            // Cofactor expansion, transposed.
            let r0 = (j + 1) % 3;
            let r1 = (j + 2) % 3;
            let c0 = (i + 1) % 3;
            let c1 = (i + 2) % 3;
            inv[i][j] = (m[r0][c0] * m[r1][c1] - m[r0][c1] * m[r1][c0]) * inv_det;
        }
    }
    inv
}

/// Soft-knee gamut compression: values are clamped to `[0, 1]` with a
/// smooth roll-off above `knee` instead of a hard clip. Applied in place.
pub fn gamut_map(img: &mut RgbImage) {
    const KNEE: f32 = 0.9;
    for v in img.as_mut_slice() {
        let x = v.max(0.0);
        *v = if x <= KNEE {
            x
        } else {
            // Asymptotic approach to 1.0 above the knee.
            KNEE + (1.0 - KNEE) * (1.0 - (-(x - KNEE) / (1.0 - KNEE)).exp())
        };
    }
}

/// sRGB-like gamma encoding (γ = 1/2.2) — the display/tone-mapping stage.
/// Applied in place.
pub fn tone_map(img: &mut RgbImage) {
    for v in img.as_mut_slice() {
        *v = v.max(0.0).powf(1.0 / 2.2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::{Sensor, SensorConfig};

    fn noiseless_sensor() -> Sensor {
        Sensor::new(SensorConfig { read_noise: 0.0, shot_noise: 0.0, gain: 1.0 }, 0)
    }

    #[test]
    fn table2_stage_sets() {
        use IspStage::*;
        assert_eq!(IspConfig::S0.stages(), &[Demosaic, Denoise, ColorMap, GamutMap, ToneMap]);
        assert_eq!(IspConfig::S5.stages(), &[Demosaic, Denoise]);
        assert_eq!(IspConfig::S8.stages(), &[Demosaic, ToneMap]);
        for cfg in IspConfig::ALL {
            assert!(cfg.has_stage(Demosaic), "{cfg} must demosaic");
        }
    }

    #[test]
    fn demosaic_flat_field_is_flat() {
        let mut s = noiseless_sensor();
        let scene = RgbImage::filled(16, 16, [0.5, 0.5, 0.5]);
        let raw = s.capture(&scene, 1.0);
        let rgb = demosaic(&raw);
        // A flat gray scene through the crosstalk keeps each channel flat.
        let center = rgb.get(8, 8);
        for y in 2..14 {
            for x in 2..14 {
                let px = rgb.get(x, y);
                for c in 0..3 {
                    assert!((px[c] - center[c]).abs() < 1e-3);
                }
            }
        }
    }

    #[test]
    fn color_map_inverts_crosstalk() {
        let mut s = noiseless_sensor();
        let scene = RgbImage::filled(16, 16, [0.8, 0.6, 0.1]); // yellow-ish
        let raw = s.capture(&scene, 1.0);
        let mut rgb = demosaic(&raw);
        color_map(&mut rgb);
        let px = rgb.get(8, 8);
        assert!((px[0] - 0.8).abs() < 0.05, "R recovered, got {}", px[0]);
        assert!((px[1] - 0.6).abs() < 0.05, "G recovered, got {}", px[1]);
        assert!((px[2] - 0.1).abs() < 0.05, "B recovered, got {}", px[2]);
    }

    #[test]
    fn color_map_restores_yellow_contrast() {
        // Without CM, yellow-vs-gray gray-level contrast is weaker —
        // the effect behind Table III's CM choices for yellow lanes.
        let mut s = noiseless_sensor();
        let yellow = RgbImage::filled(16, 16, [0.85, 0.70, 0.15]);
        let gray = RgbImage::filled(16, 16, [0.30, 0.30, 0.30]);
        let contrast = |with_cm: bool| -> f32 {
            let mut sy = noiseless_sensor();
            let mut sg = noiseless_sensor();
            let mut ry = demosaic(&sy.capture(&yellow, 1.0));
            let mut rg = demosaic(&sg.capture(&gray, 1.0));
            if with_cm {
                color_map(&mut ry);
                color_map(&mut rg);
            }
            ry.to_gray().get(8, 8) - rg.to_gray().get(8, 8)
        };
        let _ = &mut s;
        assert!(contrast(true) > contrast(false));
    }

    #[test]
    fn denoise_reduces_noise_std() {
        let mut s = Sensor::new(SensorConfig { read_noise: 0.05, shot_noise: 0.0, gain: 1.0 }, 11);
        let scene = RgbImage::filled(64, 64, [0.5, 0.5, 0.5]);
        let raw = s.capture(&scene, 1.0);
        let noisy = demosaic(&raw);
        let mut smooth = noisy.clone();
        denoise(&mut smooth);
        assert!(smooth.to_gray().std_dev() < 0.8 * noisy.to_gray().std_dev());
    }

    #[test]
    fn tone_map_brightens_shadows() {
        let mut img = RgbImage::filled(2, 2, [0.1, 0.1, 0.1]);
        tone_map(&mut img);
        assert!(img.get(0, 0)[0] > 0.3);
    }

    #[test]
    fn gamut_map_soft_clips() {
        let mut img = RgbImage::filled(1, 1, [1.5, 0.5, -0.2]);
        gamut_map(&mut img);
        let px = img.get(0, 0);
        assert!(px[0] <= 1.0 && px[0] > 0.9);
        assert!((px[1] - 0.5).abs() < 1e-6, "in-gamut values unchanged");
        assert_eq!(px[2], 0.0);
    }

    #[test]
    fn pipeline_output_is_quantized() {
        let mut s = noiseless_sensor();
        let raw = s.capture(&RgbImage::filled(8, 8, [0.3, 0.3, 0.3]), 1.0);
        let out = IspPipeline::new(IspConfig::S0).process(&raw);
        for &v in out.as_slice() {
            let steps = v * (OUTPUT_LEVELS - 1) as f32;
            assert!((steps - steps.round()).abs() < 1e-3);
        }
    }

    #[test]
    fn tone_map_preserves_shadow_detail_after_quantization() {
        // In a dark scene, S4 (no TM) collapses nearby shadow values onto
        // the same 8-bit code, while S3 (with TM) keeps them distinct.
        let mut s = noiseless_sensor();
        let a = s.capture(&RgbImage::filled(8, 8, [0.26, 0.26, 0.26]), 0.15);
        let b = s.capture(&RgbImage::filled(8, 8, [0.30, 0.30, 0.30]), 0.15);
        let with_tm = IspPipeline::new(IspConfig::S3);
        let without_tm = IspPipeline::new(IspConfig::S4);
        let d_tm =
            (with_tm.process(&a).to_gray().mean() - with_tm.process(&b).to_gray().mean()).abs();
        let d_no = (without_tm.process(&a).to_gray().mean()
            - without_tm.process(&b).to_gray().mean())
        .abs();
        assert!(
            d_tm >= d_no,
            "tone map must preserve at least as much shadow separation ({d_tm} vs {d_no})"
        );
    }

    #[test]
    fn invert3_roundtrip() {
        let m = crate::sensor::CROSSTALK;
        let inv = invert3(m);
        for i in 0..3 {
            for j in 0..3 {
                let mut v = 0.0;
                for k in 0..3 {
                    v += inv[i][k] * m[k][j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn config_display_names() {
        assert_eq!(IspConfig::S0.to_string(), "S0");
        assert_eq!(IspConfig::ALL.len(), 9);
    }
}
