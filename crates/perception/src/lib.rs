//! Perception (PR) substrate: lateral-deviation estimation from frames.
//!
//! Implements the paper's perception stage (Sec. II, Fig. 3(b)):
//!
//! 1. **ROI selection** — one of five regions of interest ([`roi::Roi`],
//!    Table II) chosen per situation;
//! 2. **perspective transform** — the ROI ground region is rectified into
//!    a bird's-eye view ([`bev`]) through a plane homography;
//! 3. **binarization** — dynamic (statistics-based) thresholding of a
//!    marking-likelihood score ([`threshold`]);
//! 4. **sliding windows** — candidate lane pixels are collected bottom-up
//!    ([`sliding`]);
//! 5. **curve fitting** — a second-order polynomial per lane, from which
//!    the lateral deviation `y_L` at the look-ahead distance
//!    (`L_L = 5.5 m`) is computed ([`pipeline`]).
//!
//! The [`baselines`] module adds the two Fig. 1 comparison points: a
//! classical Sobel+Hough detector (fast, brittle) and a dense
//! full-frame scanline detector standing in for the CNN-segmentation
//! approaches (robust, expensive).
//!
//! # Example
//!
//! ```
//! use lkas_perception::pipeline::{Perception, PerceptionConfig};
//! use lkas_perception::roi::Roi;
//! use lkas_scene::{camera::Camera, render::SceneRenderer, track::Track};
//! use lkas_scene::situation::TABLE3_SITUATIONS;
//! use lkas_imaging::{isp::{IspConfig, IspPipeline}, sensor::{Sensor, SensorConfig}};
//!
//! let cam = Camera::default_automotive();
//! let track = Track::for_situation(&TABLE3_SITUATIONS[0], 500.0);
//! let frame = SceneRenderer::new(cam.clone()).render(&track, 10.0, 0.2, 0.0);
//! let raw = Sensor::new(SensorConfig::default(), 1).capture(&frame, 1.0);
//! let rgb = IspPipeline::new(IspConfig::S0).process(&raw);
//! let pr = Perception::new(PerceptionConfig::new(Roi::Roi1), cam);
//! let out = pr.process(&rgb).unwrap();
//! // Vehicle is 0.2 m left of center ⇒ y_L ≈ +0.2 m.
//! assert!((out.y_l - 0.2).abs() < 0.2);
//! ```

pub mod baselines;
pub mod bev;
pub mod pipeline;
pub mod roi;
pub mod sliding;
pub mod threshold;

pub use pipeline::{
    Perception, PerceptionConfig, PerceptionError, PerceptionOutput, PerceptionScratch,
};
pub use roi::Roi;

/// Look-ahead distance at which the lateral deviation is evaluated
/// (paper Sec. II: `L_L = 5.5 m`).
pub const LOOK_AHEAD: f64 = 5.5;
