//! Switched-stability certification of the situation mode family
//! (Sec. III-D).
//!
//! Controller switches change `(v, h, τ)` at runtime. The paper argues
//! stability via the existence of a common quadratic Lyapunov function
//! (CQLF) over the closed-loop modes ([15], [16]). This module builds
//! the closed-loop matrices of a set of design points and runs the CQLF
//! search from `lkas-control`.
//!
//! A subtlety the paper glosses over: modes with different `h` evolve on
//! different time grids. Following [16], each mode's closed-loop map is
//! normalized to a common comparison horizon by powering it up to the
//! least common multiple of the periods, so the certified decrease is
//! per-LCM-interval.

use lkas_control::design::{design_controller, ControllerConfig};
use lkas_control::stability::{find_cqlf, verify_cqlf};
use lkas_linalg::{LinalgError, Mat};

/// Builds the closed-loop matrix of each design point, normalized to
/// the least-common-multiple horizon of all sampling periods.
///
/// # Errors
///
/// Propagates controller-design errors.
pub fn mode_matrices(configs: &[ControllerConfig]) -> Result<Vec<Mat>, LinalgError> {
    // LCM of the periods in integer milliseconds (all are multiples of
    // 5 ms in this workspace).
    let periods: Vec<u64> = configs.iter().map(|c| c.h_ms.round() as u64).collect();
    let lcm = periods.iter().copied().fold(1u64, lcm_u64);
    let mut mats = Vec::with_capacity(configs.len());
    for (cfg, period) in configs.iter().zip(&periods) {
        let ctl = design_controller(cfg)?;
        let acl = ctl.closed_loop_matrix();
        let reps = (lcm / period).max(1);
        let mut powered = acl.clone();
        for _ in 1..reps {
            powered = powered.matmul(&acl)?;
        }
        mats.push(powered);
    }
    Ok(mats)
}

fn lcm_u64(a: u64, b: u64) -> u64 {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = b;
            b = a % b;
            a = t;
        }
        a
    }
    if a == 0 || b == 0 {
        1
    } else {
        a / gcd(a, b) * b
    }
}

/// Certificate of switched stability over a mode family.
#[derive(Debug, Clone)]
pub struct SwitchingCertificate {
    /// The common quadratic Lyapunov matrix `P`.
    pub lyapunov: Mat,
    /// Number of certified modes.
    pub modes: usize,
}

/// Attempts to certify arbitrary switching between the given design
/// points with a CQLF.
///
/// Returns `None` if any mode is unstable or no common certificate was
/// found (the search is sound but incomplete; see
/// [`lkas_control::stability`]).
pub fn certify_switching(configs: &[ControllerConfig]) -> Option<SwitchingCertificate> {
    let mats = mode_matrices(configs).ok()?;
    let p = find_cqlf(&mats)?;
    debug_assert!(verify_cqlf(&mats, &p));
    Some(SwitchingCertificate { lyapunov: p, modes: mats.len() })
}

/// When no single-period CQLF exists (e.g. across the 30 / 50 km/h
/// speed modes, whose plants differ substantially), switching is still
/// stable if each mode dwells long enough. This returns the smallest
/// dwell count `k ≤ max_k` (in common-horizon intervals) such that the
/// `k`-step mode maps `Aᵢᵏ` admit a CQLF — a sufficient certificate for
/// switching no faster than every `k` intervals.
///
/// In the LKAS, speed changes ramp over ≈1 s (40 periods at h = 25 ms),
/// so even double-digit dwell bounds are satisfied by a wide margin.
pub fn minimum_dwell_intervals(configs: &[ControllerConfig], max_k: usize) -> Option<usize> {
    let mats = mode_matrices(configs).ok()?;
    let mut powered: Vec<Mat> = mats.clone();
    for k in 1..=max_k {
        if find_cqlf(&powered).is_some() {
            return Some(k);
        }
        powered =
            powered.iter().zip(&mats).map(|(p, a)| p.matmul(a).expect("square products")).collect();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::KnobTable;
    use lkas_platform::schedule::ClassifierSet;

    #[test]
    fn lcm_helper() {
        assert_eq!(lcm_u64(25, 45), 225);
        assert_eq!(lcm_u64(25, 25), 25);
        assert_eq!(lcm_u64(35, 40), 280);
    }

    #[test]
    fn single_mode_certifies() {
        let cfg = ControllerConfig { speed_kmph: 50.0, h_ms: 25.0, tau_ms: 23.1 };
        let cert = certify_switching(&[cfg]).expect("single stable mode");
        assert_eq!(cert.modes, 1);
        assert!(cert.lyapunov.is_positive_definite());
    }

    #[test]
    fn equal_period_table3_families_certify() {
        // Within one (speed, h) family, all Table III modes must share
        // a CQLF — the switching the paper's Sec. III-D argument covers
        // directly (lane/scene changes that keep the layout).
        let table = KnobTable::paper_table3();
        for (speed, h) in [(30.0, 25.0), (50.0, 25.0), (30.0, 45.0)] {
            let configs: Vec<ControllerConfig> = table
                .iter()
                .map(|(_, t)| t.controller_config(ClassifierSet::all()))
                .filter(|c| c.speed_kmph == speed && c.h_ms == h)
                .collect();
            assert!(!configs.is_empty());
            let cert = certify_switching(&configs);
            assert!(cert.is_some(), "Table III modes at {speed} km/h, h={h} must share a CQLF");
        }
    }

    #[test]
    fn cross_period_switching_has_small_dwell_bound() {
        // Mixing h=25 and h=45 modes at 30 km/h: no single-interval
        // CQLF was found, but a two-interval dwell certifies — and the
        // track's sectors are hundreds of intervals long.
        let table = KnobTable::paper_table3();
        let configs: Vec<ControllerConfig> = table
            .iter()
            .map(|(_, t)| t.controller_config(ClassifierSet::all()))
            .filter(|c| c.speed_kmph == 30.0)
            .collect();
        let dwell = crate::stability::minimum_dwell_intervals(&configs, 10)
            .expect("30 km/h cross-period family must certify with dwell");
        assert!(dwell <= 4, "dwell bound {dwell}");
    }

    #[test]
    fn cross_speed_switching_has_finite_dwell_bound() {
        // Across speeds the plants differ; arbitrary-switching CQLF may
        // not exist, but a modest dwell time certifies. Speed changes in
        // the LKAS ramp over ≈1 s ≈ 40 periods, far above this bound.
        let c50 = ControllerConfig { speed_kmph: 50.0, h_ms: 25.0, tau_ms: 25.0 };
        let c30 = ControllerConfig { speed_kmph: 30.0, h_ms: 25.0, tau_ms: 25.0 };
        let dwell = crate::stability::minimum_dwell_intervals(&[c50, c30], 40)
            .expect("cross-speed switching must certify within 40 periods");
        assert!(dwell <= 30, "dwell bound {dwell} unexpectedly large");
    }

    #[test]
    fn mode_matrices_power_to_common_horizon() {
        let c25 = ControllerConfig { speed_kmph: 50.0, h_ms: 25.0, tau_ms: 23.1 };
        let c45 = ControllerConfig { speed_kmph: 30.0, h_ms: 45.0, tau_ms: 40.7 };
        let mats = mode_matrices(&[c25, c45]).unwrap();
        // Same dimensions despite different periods.
        assert_eq!(mats[0].shape(), mats[1].shape());
        // Powered maps stay Schur stable.
        for m in &mats {
            assert!(lkas_linalg::eig::is_schur_stable(m).unwrap());
        }
    }
}
