//! The worker pool: N threads draining a [`JobQueue`].
//!
//! Each worker loops on [`JobQueue::pop`] and hands every job to a
//! shared handler; when the queue is closed and drained, pops return
//! `None` and the workers exit, so [`WorkerPool::join`] is a clean
//! barrier for daemon shutdown. A handler panic kills only its job's
//! worker thread (surfaced by `join`), never the queue.

use crate::queue::JobQueue;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A fixed-size pool of job-draining threads.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) that pop jobs from
    /// `queue` and run `handler` on each until the queue closes.
    pub fn spawn<T, F>(workers: usize, queue: Arc<JobQueue<T>>, handler: F) -> Self
    where
        T: Send + 'static,
        F: Fn(T) + Send + Sync + 'static,
    {
        let handler = Arc::new(handler);
        let handles = (0..workers.max(1))
            .map(|index| {
                let queue = Arc::clone(&queue);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("fleet-worker-{index}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            handler(job);
                        }
                    })
                    .expect("spawn fleet worker")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Worker threads in the pool.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// `true` only for a pool that has already been joined.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to exit (close the queue first, or this
    /// blocks forever). Returns the number of workers that panicked.
    pub fn join(mut self) -> usize {
        let mut panicked = 0;
        for handle in self.handles.drain(..) {
            if handle.join().is_err() {
                panicked += 1;
            }
        }
        panicked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[test]
    fn pool_drains_queue_and_joins() {
        let queue = Arc::new(JobQueue::new(64));
        let sum = Arc::new(AtomicU64::new(0));
        let pool = {
            let sum = Arc::clone(&sum);
            WorkerPool::spawn(3, Arc::clone(&queue), move |n: u64| {
                sum.fetch_add(n, Ordering::Relaxed);
            })
        };
        assert_eq!(pool.len(), 3);
        for n in 1..=10 {
            queue.push(0, n).unwrap();
        }
        queue.close();
        assert_eq!(pool.join(), 0);
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn single_worker_runs_jobs_in_priority_order() {
        let queue = Arc::new(JobQueue::new(64));
        let order = Arc::new(Mutex::new(Vec::new()));
        // Pre-load before spawning so the lone worker observes the full
        // queue and must drain it by priority.
        queue.push(1, "c").unwrap();
        queue.push(9, "a").unwrap();
        queue.push(5, "b").unwrap();
        queue.close();
        let pool = {
            let order = Arc::clone(&order);
            WorkerPool::spawn(1, Arc::clone(&queue), move |label: &str| {
                order.lock().unwrap().push(label);
            })
        };
        assert_eq!(pool.join(), 0);
        assert_eq!(*order.lock().unwrap(), ["a", "b", "c"]);
    }

    #[test]
    fn panicking_handler_is_contained() {
        let queue = Arc::new(JobQueue::new(8));
        queue.push(0, true).unwrap();
        queue.push(0, false).unwrap();
        queue.close();
        let pool = WorkerPool::spawn(1, Arc::clone(&queue), |explode: bool| {
            if explode {
                panic!("job failure");
            }
        });
        // The panic is reported, not propagated.
        assert_eq!(pool.join(), 1);
    }
}
