//! Robustness campaign — fault-plan grid × evaluation cases, with the
//! graceful-degradation policy off and on.
//!
//! Emits `artifacts/robustness_report.json` (crash rates, MAE
//! degradation, time in degraded mode) and a telemetry artifact with
//! the aggregated fault/degradation counters. The report is a pure
//! function of `(--seed, --quick)`: any `--threads` value produces the
//! identical bytes.
//!
//! Usage: `cargo run --release -p lkas-bench --bin robustness_campaign
//!         [-- --seed 7 --threads 4 --quick --out PATH --metrics-out PATH]`

use lkas_bench::robustness::{run_campaign, write_report, CampaignConfig};
use lkas_bench::{arg_value, default_threads, render_table, write_metrics, Metrics, ARTIFACTS_DIR};
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    let cfg = CampaignConfig {
        seed: arg_value("--seed").and_then(|s| s.parse().ok()).unwrap_or(7),
        threads: arg_value("--threads")
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(default_threads),
        quick: std::env::args().any(|a| a == "--quick"),
    };
    let out = arg_value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(ARTIFACTS_DIR).join("robustness_report.json"));

    let metrics = Arc::new(Metrics::new());
    let report = run_campaign(&cfg, Some(&metrics));

    let rows: Vec<Vec<String>> = report
        .entries
        .iter()
        .map(|e| {
            vec![
                e.case.clone(),
                e.plan.clone(),
                if e.policy { "on" } else { "off" }.to_string(),
                if e.crashed { "CRASH" } else { "ok" }.to_string(),
                e.mae.map_or("-".to_string(), |m| format!("{m:.4}")),
                e.degraded_samples.to_string(),
                e.measurement_holds.to_string(),
            ]
        })
        .collect();
    println!(
        "Robustness campaign (seed {}, {} grid)",
        cfg.seed,
        if cfg.quick { "quick" } else { "full" }
    );
    println!(
        "{}",
        render_table(&["case", "plan", "policy", "outcome", "MAE (m)", "degraded", "holds"], &rows)
    );
    let s = &report.summary;
    println!(
        "crash rate: {:.2} (policy off) -> {:.2} (policy on); time degraded: {:.1}%",
        s.crash_rate_policy_off,
        s.crash_rate_policy_on,
        s.time_in_degraded_frac * 100.0
    );

    write_report(&report, &out);
    write_metrics("robustness_campaign", &metrics);
}
