//! Trait implementations for primitives and std containers.

use crate::{Deserialize, Error, Serialize, Value};

macro_rules! int_impls {
    ($($ty:ty => $variant:ident / $coerce:ident),* $(,)?) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::$variant(*self as _)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .$coerce()
                    .ok_or_else(|| Error::new(format!("expected integer, found {}", value.kind())))?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

int_impls! {
    u8 => U64 / as_u64,
    u16 => U64 / as_u64,
    u32 => U64 / as_u64,
    u64 => U64 / as_u64,
    usize => U64 / as_u64,
    i8 => I64 / as_i64,
    i16 => I64 / as_i64,
    i32 => I64 / as_i64,
    i64 => I64 / as_i64,
    isize => I64 / as_i64,
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::new(format!("expected number, found {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of {N} elements, found {len}")))
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+) of $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = crate::__private::as_array(value, $len, "tuple")?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0) of 1;
    (A: 0, B: 1) of 2;
    (A: 0, B: 1, C: 2) of 3;
    (A: 0, B: 1, C: 2, D: 3) of 4;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
