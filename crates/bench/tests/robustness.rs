//! Acceptance tests for the robustness campaign: the report must be a
//! pure function of `(seed, quick)` — in particular, byte-identical
//! across Executor thread counts and across `--shard i/N` splits
//! merged back together.

use lkas_bench::robustness::{
    campaign_spec, report_from_merged, report_json, run_campaign, run_campaign_shard,
    CampaignConfig, ROBUSTNESS_SCHEMA,
};
use lkas_bench::Metrics;
use lkas_runtime::{merge_shard_files, read_shard_file, write_shard_file, Counter, Shard};
use std::sync::Arc;

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let base = CampaignConfig::new(7).with_quick(true);
    let sequential = run_campaign(&base, None);
    let parallel = run_campaign(&base.with_threads(4), None);
    let a = report_json(&sequential);
    let b = report_json(&parallel);
    assert_eq!(a.as_bytes(), b.as_bytes(), "threads=1 and threads=4 must emit identical reports");

    assert!(a.contains(ROBUSTNESS_SCHEMA));
    assert_eq!(sequential.summary.runs_per_arm, 4, "quick grid: 1 case × 4 plans");
    // The nominal plan must not crash in either arm.
    for e in sequential.entries.iter().filter(|e| e.plan == "nominal") {
        assert!(!e.crashed, "fault-free baseline must survive (policy={})", e.policy);
        assert_eq!(e.faulted_cycles, 0);
        assert_eq!(e.frame_drops, 0);
    }
    // Faulted plans actually injected something. (The drift axis
    // injects no faults — its stress is the drifted sensor model.)
    for e in sequential.entries.iter().filter(|e| e.plan != "nominal" && e.plan != "sensor-drift") {
        assert!(e.faulted_cycles > 0, "plan {} must inject faults", e.plan);
    }
    // Every entry propagated its fitted perception-error profile into
    // a per-cell certificate, and the nominal cells certify.
    for e in &sequential.entries {
        assert!(
            e.certificate.is_some(),
            "cell {}/{}/{} lacks a certificate",
            e.case,
            e.plan,
            e.coast
        );
    }
    for e in sequential.entries.iter().filter(|e| e.plan == "nominal") {
        assert!(e.certificate.unwrap() < 1.0, "nominal cell must certify ({:?})", e.certificate);
    }
    assert_eq!(sequential.summary.certificate_cells, 12, "fault grid carries the census");
    assert!(sequential.summary.worst_certificate.is_some());
    // The blind-burst head-to-head: the observer arm coasts through a
    // 10 s outage the hold arm does not survive.
    let burst = sequential.summary.blind_burst.as_ref().expect("blind-burst axis present");
    assert!(burst.hold_crashed, "hold arm must crash in the pinned blind burst");
    assert!(!burst.observer_crashed, "observer arm must survive the pinned blind burst");
    assert!(burst.observer_beats_hold);
    assert!(burst.observer_coasts > 0, "the observer arm must actually coast");
    assert!(burst.observer_reacquisitions >= 1, "re-acquisition must be exercised");
    // The drift axis rode along: both knob sources survived, and the
    // online tuner strictly improved on the frozen table (the
    // tentpole's measured-not-asserted acceptance).
    let drift = &sequential.summary;
    let stat = drift.drift_mae_static.expect("static drift run must finish");
    let tuned = drift.drift_mae_tuned.expect("tuned drift run must finish");
    assert!(tuned < stat, "online tuner ({tuned}) must beat the frozen table ({stat})");
    // Every widened-axis situation reports both arms, and the headline
    // numbers are the primary situation's pair.
    use lkas_bench::robustness::DRIFT_SITUATIONS;
    assert_eq!(
        drift.drift_situations.iter().map(|d| d.situation).collect::<Vec<_>>(),
        DRIFT_SITUATIONS.to_vec(),
        "per-situation summaries must cover the drift axis in grid order"
    );
    for d in &drift.drift_situations {
        assert!(d.mae_static.is_some(), "situation {} missing static MAE", d.situation);
        assert!(d.mae_tuned.is_some(), "situation {} missing tuned MAE", d.situation);
    }
    assert_eq!(drift.drift_situations[0].mae_static, Some(stat));
    assert_eq!(drift.drift_situations[0].mae_tuned, Some(tuned));
}

#[test]
fn sharded_report_is_byte_identical_to_single_process() {
    // The tentpole acceptance on the real campaign: split the quick
    // grid into shards run at *different* thread counts, write the
    // shard artifacts, merge them, and require the reassembled report
    // to match the single-process bytes. (The 1-shard × {1,4}-thread
    // cell of the matrix is `report_is_byte_identical_across_thread_counts`;
    // the full {1,2,4} × {1,4} matrix runs on a synthetic grid in the
    // engine's own tests.)
    let cfg = CampaignConfig::new(7).with_threads(2).with_quick(true);
    let reference = report_json(&run_campaign(&cfg, None));
    let dir = std::env::temp_dir().join(format!("lkas-rob-shards-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for (count, threads) in [(2usize, vec![1usize, 4]), (4, vec![2, 3, 1, 4])] {
        let files: Vec<_> = (0..count)
            .map(|index| {
                let shard_cfg = cfg.with_threads(threads[index]);
                let spec = campaign_spec(&shard_cfg, Shard { index, count }, None, false);
                let metrics = Arc::new(Metrics::new());
                let run = run_campaign_shard(&shard_cfg, &spec, Some(&metrics));
                let path = dir.join(format!("{count}-{index}.json"));
                write_shard_file(&path, &spec, &run, Some(&metrics));
                read_shard_file(&path).unwrap()
            })
            .collect();
        let mut merged = merge_shard_files(files).unwrap();
        // The shards' telemetry dumps must account for every grid point
        // exactly once (4 plans × 3 degradation arms + 2 blind-burst
        // arms + 3 situations × 2 drift arms).
        assert_eq!(merged.metrics.counter(Counter::CampaignEvaluations), 20);
        let report = report_from_merged(&cfg, &mut merged).unwrap();
        assert_eq!(
            report_json(&report).as_bytes(),
            reference.as_bytes(),
            "{count} shard(s) must merge to the single-process report"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kernel_backend_is_invisible_in_the_report() {
    // The frame-path kernel backend is a runtime knob, like
    // `--threads`: selecting the exact lane kernels (the default) over
    // the scalar reference must leave the quick robustness report
    // byte-identical. This is the end-to-end closure of the per-kernel
    // bit-identity the imaging proptests and gate-kernel-equivalence
    // assert — if a lane kernel ever drifts, the diff surfaces here as
    // report bytes, not just as pixel deltas.
    use lkas_imaging::KernelBackend;
    let scalar = run_campaign(
        &CampaignConfig::new(7).with_quick(true).with_kernel_backend(KernelBackend::Scalar),
        None,
    );
    let lanes = run_campaign(
        &CampaignConfig::new(7).with_quick(true).with_kernel_backend(KernelBackend::lanes()),
        None,
    );
    assert_eq!(
        report_json(&scalar).as_bytes(),
        report_json(&lanes).as_bytes(),
        "exact lane kernels must not change the report"
    );
}
