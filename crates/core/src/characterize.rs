//! Design-time hardware- and situation-aware characterization
//! (Sec. III-B → Table III).
//!
//! A [`Characterizer`] evaluates, for each situation, every candidate
//! knob tuning (ISP configuration × layout-compatible ROI × speed) in a
//! closed-loop HiL simulation and records the tuning with the best QoC
//! (lowest MAE). Candidates that crash are disqualified. The sweep runs
//! through the [`lkas_runtime::campaign`] engine: the candidate grid is
//! canonical (same order on every run), so it can be split into
//! `--shard i/N` slices, checkpointed and resumed, and merged back into
//! a [`Characterization`] byte-identical to the single-process sweep at
//! any shard and thread count.
//!
//! The characterization's durable output is a [`KnobStore`]: a
//! versioned, serializable wrapper of the regenerated [`KnobTable`]
//! plus the full per-candidate MAE sweep. The batch campaign bins write
//! it as an artifact, and the runtime [`crate::tuner`] queries it as
//! the warm-start prior of the online re-characterization layer and
//! updates it with measured closed-loop outcomes.

use crate::cases::Case;
use crate::errprofile::{ErrorProfileStore, ProfileFitter};
use crate::hil::{HilConfig, HilResult, HilSimulator, SituationSource};
use crate::knobs::{candidate_tunings, KnobTable, KnobTuning};
use lkas_imaging::sensor::SensorConfig;
use lkas_runtime::{
    run_campaign, CampaignRun, CampaignSpec, Executor, Fingerprint, MergedShards, Metrics, Shard,
};
use lkas_scene::camera::Camera;
use lkas_scene::situation::SituationFeatures;
use lkas_scene::track::Track;
use serde::{Deserialize, Serialize, Value};
use std::path::PathBuf;

/// Configuration of a characterization sweep.
///
/// Construct with [`CharacterizeConfig::new`] plus the `with_*`
/// builders; the struct is `#[non_exhaustive]`, so downstream crates go
/// through the builder surface (individual fields stay readable).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CharacterizeConfig {
    /// Track length per evaluation run (m). Longer runs average more
    /// noise but cost proportionally more.
    pub track_length_m: f64,
    /// Camera used for the runs (a half-resolution camera keeps the
    /// sweep fast without changing the knob ordering).
    pub camera: Camera,
    /// Sensor noise/gain model the candidates are evaluated under. The
    /// default is the nominal automotive sensor; a drifted model
    /// re-characterizes the same knob space under degraded hardware.
    pub sensor: SensorConfig,
    /// Sensor seed base; each candidate gets a distinct derived seed.
    pub seed: u64,
    /// Worker threads (wall-clock only — never affects outcomes).
    pub threads: usize,
}

impl Default for CharacterizeConfig {
    fn default() -> Self {
        CharacterizeConfig {
            track_length_m: 220.0,
            camera: Camera::new(256, 128, 150.0, 1.3, 6.0_f64.to_radians()),
            sensor: SensorConfig::default(),
            seed: 7,
            threads: Executor::default_threads(),
        }
    }
}

impl CharacterizeConfig {
    /// The default sweep configuration (equivalent to `default()`).
    pub fn new() -> Self {
        CharacterizeConfig::default()
    }

    /// Replaces the per-run track length (builder style).
    pub fn with_track_length(mut self, track_length_m: f64) -> Self {
        self.track_length_m = track_length_m;
        self
    }

    /// Replaces the camera (builder style).
    pub fn with_camera(mut self, camera: Camera) -> Self {
        self.camera = camera;
        self
    }

    /// Replaces the sensor model (builder style).
    pub fn with_sensor(mut self, sensor: SensorConfig) -> Self {
        self.sensor = sensor;
        self
    }

    /// Replaces the seed base (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the worker-thread count (builder style). Clamped to at
    /// least 1.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// Result of evaluating one candidate tuning for one situation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateOutcome {
    /// The candidate knob tuning.
    pub tuning: KnobTuning,
    /// Measured MAE, or `None` if the run crashed (disqualified).
    pub mae: Option<f64>,
    /// Perception failures during the run (diagnostic).
    pub perception_failures: u64,
    /// Raw perception-error moments of the run — the cell's
    /// [`crate::errprofile::PerceptionErrorProfile`] source data,
    /// persisted as moments so shard merges stay exact.
    pub moments: ProfileFitter,
}

/// Full characterization output: the best tuning per situation plus the
/// complete candidate sweep for analysis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Best-QoC tuning per situation — the regenerated Table III.
    pub table: KnobTable,
    /// All candidate outcomes per situation, in sweep order.
    pub sweeps: Vec<(SituationFeatures, Vec<CandidateOutcome>)>,
}

impl Characterization {
    /// The measured MAE of the winning tuning for a situation.
    pub fn best_mae(&self, situation: &SituationFeatures) -> Option<f64> {
        let best = self.table.get(situation)?;
        self.sweeps.iter().find(|(s, _)| s == situation)?.1.iter().find(|c| c.tuning == best)?.mae
    }

    /// The canonical cell key of one `(situation, knob-config)` pair in
    /// the [`ErrorProfileStore`] emitted by
    /// [`Characterization::error_profiles`].
    pub fn profile_cell_key(situation: &SituationFeatures, tuning: &KnobTuning) -> String {
        format!(
            "{}|isp={}|roi={}|v={:.0}",
            situation.describe(),
            tuning.isp.name(),
            tuning.roi.name(),
            tuning.speed_kmph
        )
    }

    /// Packages the sweep's per-cell perception-error moments as a
    /// versioned [`ErrorProfileStore`] stamped with the originating
    /// configuration's fingerprint — the `lkas-errprofile-v1` artifact
    /// persisted alongside the knob store.
    pub fn error_profiles(&self, config_hash: &str) -> ErrorProfileStore {
        let mut store = ErrorProfileStore::new(config_hash);
        for (situation, outcomes) in &self.sweeps {
            for outcome in outcomes {
                store.record(
                    &Characterization::profile_cell_key(situation, &outcome.tuning),
                    outcome.moments,
                );
            }
        }
        store
    }

    /// Packages the characterization as a versioned [`KnobStore`]
    /// stamped with the originating configuration's fingerprint.
    pub fn into_store(self, config_hash: &str) -> KnobStore {
        let sweeps = self
            .sweeps
            .into_iter()
            .map(|(s, outcomes)| (s, outcomes.into_iter().map(|c| (c.tuning, c.mae)).collect()))
            .collect();
        KnobStore {
            schema: KNOB_STORE_SCHEMA.to_string(),
            version: 1,
            config_hash: config_hash.to_string(),
            table: self.table,
            sweeps,
        }
    }
}

/// Schema tag of the serialized [`KnobStore`].
pub const KNOB_STORE_SCHEMA: &str = "lkas-knobstore-v1";

/// The versioned, serializable knob service shared by the batch
/// characterization and the online tuner.
///
/// A store wraps the characterized [`KnobTable`] (the *prior*) together
/// with the per-candidate MAE sweep it was distilled from, under a
/// monotonic `version` that bumps on every runtime update
/// ([`KnobStore::record_outcome`]). Both consumers go through one API:
/// the campaign bins serialize it as an artifact, and the
/// [`crate::tuner::KnobTuner`] queries `prior`/`prior_mae`/`candidates`
/// to warm-start its arms and records measured closed-loop outcomes
/// back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnobStore {
    schema: String,
    version: u64,
    config_hash: String,
    table: KnobTable,
    sweeps: Vec<(SituationFeatures, Vec<(KnobTuning, Option<f64>)>)>,
}

impl KnobStore {
    /// A store around a bare table (no sweep data) — e.g. the paper's
    /// published Table III, used as the uncharacterized prior.
    pub fn from_table(table: KnobTable) -> Self {
        KnobStore {
            schema: KNOB_STORE_SCHEMA.to_string(),
            version: 1,
            config_hash: String::new(),
            table,
            sweeps: Vec::new(),
        }
    }

    /// The monotonic store version; bumps on every recorded outcome.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Fingerprint of the configuration the prior was characterized
    /// under (empty for a bare-table store).
    pub fn config_hash(&self) -> &str {
        &self.config_hash
    }

    /// The characterized prior table.
    pub fn table(&self) -> &KnobTable {
        &self.table
    }

    /// The characterized prior tuning for a situation, with the
    /// table's graceful nearest-situation fallback.
    pub fn prior(&self, situation: &SituationFeatures) -> KnobTuning {
        self.table.lookup(situation)
    }

    /// The prior sweep MAE of one candidate, if it was characterized.
    pub fn prior_mae(&self, situation: &SituationFeatures, tuning: &KnobTuning) -> Option<f64> {
        self.sweeps.iter().find(|(s, _)| s == situation)?.1.iter().find(|(t, _)| t == tuning)?.1
    }

    /// The layout-compatible candidate arms for a situation (the same
    /// set the batch characterization sweeps).
    pub fn candidates(&self, situation: &SituationFeatures) -> Vec<KnobTuning> {
        candidate_tunings(situation)
    }

    /// Records a measured closed-loop outcome for one candidate,
    /// replacing any prior entry for it, and bumps the store version.
    /// `None` marks the candidate disqualified (crashed).
    pub fn record_outcome(
        &mut self,
        situation: &SituationFeatures,
        tuning: KnobTuning,
        mae: Option<f64>,
    ) {
        let sweep = match self.sweeps.iter_mut().find(|(s, _)| s == situation) {
            Some((_, sweep)) => sweep,
            None => {
                self.sweeps.push((*situation, Vec::new()));
                &mut self.sweeps.last_mut().expect("just pushed").1
            }
        };
        match sweep.iter_mut().find(|(t, _)| *t == tuning) {
            Some(slot) => slot.1 = mae,
            None => sweep.push((tuning, mae)),
        }
        self.version += 1;
    }

    /// Folds another store's sweep outcomes into this one,
    /// version-monotonically: when `other` carries the higher version
    /// its outcomes override this store's on conflict, otherwise this
    /// store's entries win and `other` only fills gaps. The merged
    /// version is the maximum of the two, so a merge never rolls a
    /// persisted store backwards (the fleet daemon uses this to absorb
    /// a tenant's on-disk store into a live one, and vice versa).
    pub fn merge_from(&mut self, other: &KnobStore) {
        let theirs_newer = other.version > self.version;
        for (situation, sweep) in &other.sweeps {
            let mine = match self.sweeps.iter_mut().find(|(s, _)| s == situation) {
                Some((_, sweep)) => sweep,
                None => {
                    self.sweeps.push((*situation, Vec::new()));
                    &mut self.sweeps.last_mut().expect("just pushed").1
                }
            };
            for (tuning, mae) in sweep {
                match mine.iter_mut().find(|(t, _)| t == tuning) {
                    Some(slot) => {
                        if theirs_newer {
                            slot.1 = *mae;
                        }
                    }
                    None => mine.push((*tuning, *mae)),
                }
            }
        }
        if self.config_hash.is_empty() {
            self.config_hash = other.config_hash.clone();
        }
        self.version = self.version.max(other.version);
    }

    /// Serializes the store as pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics on an internal serde error (cannot happen for this type).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serialize knob store")
    }

    /// Deserializes a store, rejecting unknown schema tags.
    ///
    /// # Errors
    ///
    /// Returns a message when the document does not parse or carries a
    /// schema this build cannot interpret.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let store: KnobStore =
            serde_json::from_str(json).map_err(|e| format!("knob store does not parse: {e:?}"))?;
        if store.schema != KNOB_STORE_SCHEMA {
            return Err(format!(
                "knob store schema `{}` is not supported (expected `{KNOB_STORE_SCHEMA}`)",
                store.schema
            ));
        }
        Ok(store)
    }
}

/// The design-time characterization engine: one coherent surface over
/// candidate evaluation, grid generation, campaign sharding, and
/// result assembly (previously a sprawl of free functions).
#[derive(Debug, Clone, Default)]
pub struct Characterizer {
    config: CharacterizeConfig,
}

impl Characterizer {
    /// A characterizer for a sweep configuration.
    pub fn new(config: CharacterizeConfig) -> Self {
        Characterizer { config }
    }

    /// Reconstructs a characterizer from a shard artifact's `params`
    /// blob (the camera and sensor are the characterization defaults;
    /// the recorded `config_hash` cross-checks the reconstruction).
    ///
    /// # Errors
    ///
    /// Returns a message when a parameter is missing or mistyped.
    pub fn from_params(params: &Value) -> Result<Self, String> {
        let Value::Object(fields) = params else {
            return Err("characterization params are not an object".to_string());
        };
        let field = |name: &str| {
            fields
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("characterization params lack `{name}`"))
        };
        let track_length_m =
            field("track_length_m")?.as_f64().ok_or("`track_length_m` is not a number")?;
        let seed = field("seed")?.as_u64().ok_or("`seed` is not an integer")?;
        Ok(Characterizer::new(
            CharacterizeConfig::new().with_track_length(track_length_m).with_seed(seed),
        ))
    }

    /// The sweep configuration.
    pub fn config(&self) -> &CharacterizeConfig {
        &self.config
    }

    /// The stable content fingerprint of the configuration: everything
    /// that determines evaluation outcomes (track length, camera model,
    /// sensor model, seed base) and nothing that does not (`threads`).
    /// Embedded in candidate keys and shard artifacts so checkpoints
    /// and merges can only combine evaluations of the same
    /// configuration.
    pub fn fingerprint(&self) -> String {
        // The leading tag carries the sweep revision: v2 added the
        // per-cell perception-error moments to [`CandidateOutcome`], so
        // v1-era checkpoints and shard artifacts can never be merged
        // into a v2 run.
        let config = &self.config;
        Fingerprint::new()
            .push_str("characterize-v2")
            .push_f64(config.track_length_m)
            .push_u64(config.camera.width() as u64)
            .push_u64(config.camera.height() as u64)
            .push_f64(config.camera.focal())
            .push_f64(config.camera.mount_height())
            .push_f64(config.camera.pitch())
            .push_f64(config.sensor.read_noise as f64)
            .push_f64(config.sensor.shot_noise as f64)
            .push_f64(config.sensor.gain as f64)
            .push_u64(config.seed)
            .finish()
    }

    /// The per-candidate sensor seed: the base seed, situation index,
    /// and every tuning field mixed through chained splitmix64
    /// finalizers.
    ///
    /// An earlier linear derivation (`base * φ + si*1000 + isp*97 +
    /// roi*13 + speed`) let distinct `(situation, tuning)` pairs
    /// collide; the avalanche rounds make that practically impossible.
    pub fn candidate_seed(&self, situation_index: usize, tuning: &KnobTuning) -> u64 {
        let mut state = splitmix64(self.config.seed);
        for word in [
            situation_index as u64,
            tuning.isp as u64,
            tuning.roi as u64,
            tuning.speed_kmph.to_bits(),
        ] {
            state = splitmix64(state ^ word);
        }
        state
    }

    /// Evaluates one candidate tuning for one situation: a
    /// Case-4-shaped closed loop with the oracle situation source and a
    /// single-entry knob table pinning the candidate.
    pub fn evaluate(
        &self,
        situation: &SituationFeatures,
        tuning: KnobTuning,
        seed: u64,
    ) -> HilResult {
        let mut table = KnobTable::new();
        table.insert(*situation, tuning);
        let track = Track::for_situation(situation, self.config.track_length_m);
        // Start with the correct estimate: the designer knows the
        // situation at characterization time (Sec. III-B).
        let hil = HilConfig::new(Case::Case4, SituationSource::Oracle)
            .with_knob_table(table)
            .with_camera(self.config.camera.clone())
            .with_sensor(self.config.sensor.clone())
            .with_seed(seed)
            .with_initial_estimate(*situation)
            .with_error_fit(true);
        HilSimulator::new(track, hil).run()
    }

    /// The content key of one candidate evaluation: situation, tuning,
    /// derived sensor seed, and the configuration fingerprint. Two
    /// grids that share a key share the evaluation — the basis of the
    /// checkpoint's content-keyed cache.
    fn candidate_key(
        &self,
        situation_index: usize,
        situation: &SituationFeatures,
        tuning: &KnobTuning,
        seed: u64,
        config_hash: &str,
    ) -> String {
        format!(
            "s{situation_index:02}|{}|isp={}|roi={}|v={:.0}|seed={seed:016x}|cfg={config_hash}",
            situation.describe(),
            tuning.isp.name(),
            tuning.roi.name(),
            tuning.speed_kmph
        )
    }

    /// The canonical characterization grid: `(content key, (situation
    /// index, candidate))` in sweep order. Every shard of every run
    /// regenerates this identical list — the deterministic partitioner
    /// slices it, and the merge reassembles along it.
    pub fn grid(&self, situations: &[SituationFeatures]) -> Vec<(String, (usize, KnobTuning))> {
        let config_hash = self.fingerprint();
        let mut grid = Vec::new();
        for (si, situation) in situations.iter().enumerate() {
            for tuning in candidate_tunings(situation) {
                let seed = self.candidate_seed(si, &tuning);
                grid.push((
                    self.candidate_key(si, situation, &tuning, seed, &config_hash),
                    (si, tuning),
                ));
            }
        }
        grid
    }

    /// Builds the [`CampaignSpec`] for a characterization run: the
    /// campaign identity and parameters that shard artifacts record and
    /// the merge driver reads back.
    pub fn spec(&self, shard: Shard, checkpoint: Option<PathBuf>, resume: bool) -> CampaignSpec {
        CampaignSpec {
            name: "table3_characterization".to_string(),
            params: Value::Object(vec![
                ("track_length_m".to_string(), Value::F64(self.config.track_length_m)),
                ("seed".to_string(), Value::U64(self.config.seed)),
            ]),
            config_hash: self.fingerprint(),
            threads: self.config.threads,
            shard,
            checkpoint,
            resume,
        }
    }

    /// Runs one shard of the characterization campaign: restores
    /// checkpointed candidates, evaluates the rest, and returns the
    /// shard's outcomes in canonical grid order.
    pub fn run_shard(
        &self,
        situations: &[SituationFeatures],
        spec: &CampaignSpec,
        metrics: Option<&Metrics>,
    ) -> CampaignRun<CandidateOutcome> {
        let grid = self.grid(situations);
        run_campaign(
            spec,
            grid,
            metrics,
            || (),
            |_key, (si, tuning), _state: &mut ()| {
                let seed = self.candidate_seed(si, &tuning);
                let result = self.evaluate(&situations[si], tuning, seed);
                CandidateOutcome {
                    tuning,
                    mae: if result.crashed { None } else { result.overall_mae() },
                    perception_failures: result.perception_failures,
                    moments: result.error_fit.unwrap_or_default(),
                }
            },
            |()| {},
        )
    }

    /// Collates full-grid outcomes (in canonical grid order) into the
    /// regenerated Table III. Outcome order is deterministic, so the
    /// sweeps — and the winner on MAE ties — are identical for any
    /// thread or shard count.
    pub fn assemble(
        &self,
        situations: &[SituationFeatures],
        outcomes: impl IntoIterator<Item = (usize, CandidateOutcome)>,
    ) -> Characterization {
        let mut sweeps: Vec<(SituationFeatures, Vec<CandidateOutcome>)> =
            situations.iter().map(|s| (*s, Vec::new())).collect();
        for (si, outcome) in outcomes {
            sweeps[si].1.push(outcome);
        }
        let mut table = KnobTable::new();
        for (situation, outcomes) in &sweeps {
            let best = outcomes
                .iter()
                .filter_map(|c| c.mae.map(|m| (c.tuning, m)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            if let Some((tuning, _)) = best {
                table.insert(*situation, tuning);
            }
        }
        Characterization { table, sweeps }
    }

    /// Reassembles a full [`Characterization`] from merged shard
    /// artifacts: walks the canonical grid, takes each entry out of the
    /// merged set, and collates — byte-identical to the single-process
    /// sweep.
    ///
    /// # Errors
    ///
    /// Returns a message when the shards were run with a different
    /// configuration, do not cover the grid, or an entry does not
    /// deserialize.
    pub fn from_merged(
        &self,
        situations: &[SituationFeatures],
        merged: &mut MergedShards,
    ) -> Result<Characterization, String> {
        let expected = self.fingerprint();
        if merged.config_hash != expected {
            return Err(format!(
                "merged shards fingerprint {} does not match configuration {expected}",
                merged.config_hash
            ));
        }
        let mut outcomes = Vec::new();
        for (key, (si, _)) in self.grid(situations) {
            outcomes.push((si, merged.take::<CandidateOutcome>(&key)?));
        }
        Ok(self.assemble(situations, outcomes))
    }

    /// Characterizes the given situations, returning the regenerated
    /// Table III and the full sweep data — the single-process path: the
    /// full grid through the campaign engine with no checkpoint.
    pub fn characterize(&self, situations: &[SituationFeatures]) -> Characterization {
        let spec = self.spec(Shard::full(), None, false);
        let run = self.run_shard(situations, &spec, None);
        let indices: Vec<usize> =
            self.grid(situations).into_iter().map(|(_, (si, _))| si).collect();
        self.assemble(
            situations,
            indices.into_iter().zip(run.entries.into_iter().map(|(_, outcome)| outcome)),
        )
    }

    /// Characterizes and packages the result as a versioned
    /// [`KnobStore`] stamped with this configuration's fingerprint.
    pub fn characterize_store(&self, situations: &[SituationFeatures]) -> KnobStore {
        self.characterize(situations).into_store(&self.fingerprint())
    }
}

/// splitmix64 finalizer — the avalanche primitive behind candidate
/// seeds and the tuner's exploration stream.
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkas_imaging::isp::IspConfig;
    use lkas_scene::situation::TABLE3_SITUATIONS;

    fn tiny() -> Characterizer {
        Characterizer::new(CharacterizeConfig::new().with_track_length(90.0).with_threads(4))
    }

    #[test]
    fn evaluate_candidate_runs() {
        let r = tiny().evaluate(&TABLE3_SITUATIONS[0], KnobTuning::conservative(), 1);
        assert!(!r.crashed);
        assert!(r.overall_mae().is_some());
    }

    #[test]
    fn characterize_picks_a_noncrashing_winner() {
        // Sweep only a restricted candidate set via a single situation;
        // the winner must be a real (non-crashed) tuning.
        let out = tiny().characterize(&TABLE3_SITUATIONS[0..1]);
        assert_eq!(out.table.len(), 1);
        assert_eq!(out.sweeps.len(), 1);
        assert_eq!(out.sweeps[0].1.len(), 9, "9 ISP candidates on straights");
        let best = out.table.get(&TABLE3_SITUATIONS[0]).unwrap();
        assert!(out.best_mae(&TABLE3_SITUATIONS[0]).is_some());
        // The winner should not be slower than the exact pipeline: the
        // whole point of the approximation is a shorter τ (S0's τ of
        // 23+16.5+... forces h = 45 with three classifiers, while
        // S3–S8 reach h = 25).
        assert_ne!(best.isp, IspConfig::S0);
    }

    #[test]
    fn sweep_fits_per_cell_error_profiles() {
        let c = tiny();
        let out = c.characterize(&TABLE3_SITUATIONS[0..1]);
        let store = out.error_profiles(&c.fingerprint());
        assert_eq!(store.cells().count(), 9, "one profile cell per candidate");
        for (key, moments) in store.cells() {
            assert!(moments.cycles() > 0, "cell {key} saw no cycles");
        }
        // The winning cell's profile is sane: noisy but roughly
        // unbiased, with few misses on the benign straight.
        let best = out.table.get(&TABLE3_SITUATIONS[0]).unwrap();
        let key = Characterization::profile_cell_key(&TABLE3_SITUATIONS[0], &best);
        let profile = store.profile(&key).expect("winner has a fitted cell");
        assert!(profile.noise_std > 0.0 && profile.noise_std < 0.5, "σ = {}", profile.noise_std);
        assert!(profile.miss_rate < 0.5, "miss rate = {}", profile.miss_rate);
    }

    #[test]
    fn sweep_is_deterministic() {
        let c = tiny();
        let a = c.characterize(&TABLE3_SITUATIONS[0..1]);
        let b = c.characterize(&TABLE3_SITUATIONS[0..1]);
        assert_eq!(a.table.get(&TABLE3_SITUATIONS[0]), b.table.get(&TABLE3_SITUATIONS[0]));
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        // The executor returns results in job order, so the entire
        // characterization — winners *and* sweep data — must match
        // between a serial and a parallel run.
        let serial = Characterizer::new(tiny().config().clone().with_threads(1))
            .characterize(&TABLE3_SITUATIONS[0..1]);
        let parallel = Characterizer::new(tiny().config().clone().with_threads(4))
            .characterize(&TABLE3_SITUATIONS[0..1]);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sharded_sweep_merges_byte_identically_with_the_single_process_run() {
        use lkas_runtime::{merge_shard_files, read_shard_file, write_shard_file};
        let characterizer = tiny();
        let situations = &TABLE3_SITUATIONS[0..1];
        let reference = characterizer.characterize(situations);
        let dir = std::env::temp_dir().join(format!("lkas-char-shards-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Two shards at different thread counts — neither may matter.
        let files: Vec<_> = (0..2)
            .map(|index| {
                let sharded =
                    Characterizer::new(characterizer.config().clone().with_threads(1 + index));
                let spec = sharded.spec(Shard { index, count: 2 }, None, false);
                let run = sharded.run_shard(situations, &spec, None);
                let path = dir.join(format!("shard{index}.json"));
                write_shard_file(&path, &spec, &run, None);
                read_shard_file(&path).unwrap()
            })
            .collect();
        let mut merged = merge_shard_files(files).unwrap();
        let assembled = characterizer.from_merged(situations, &mut merged).unwrap();
        assert_eq!(
            serde_json::to_string_pretty(&serde_json::to_value(&assembled)),
            serde_json::to_string_pretty(&serde_json::to_value(&reference)),
            "merged shards must reproduce the single-process sweep byte-for-byte"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_sweep_resumes_from_checkpoint() {
        use lkas_runtime::{Counter, Metrics};
        let characterizer = Characterizer::new(tiny().config().clone().with_threads(2));
        let situations = &TABLE3_SITUATIONS[0..1];
        let dir = std::env::temp_dir().join(format!("lkas-char-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let checkpoint = dir.join("checkpoint.jsonl");

        // A full run checkpoints all 9 candidates.
        let spec = characterizer.spec(Shard::full(), Some(checkpoint.clone()), false);
        let full = characterizer.run_shard(situations, &spec, None);
        assert_eq!(full.stats.evaluated, 9);
        let text = std::fs::read_to_string(&checkpoint).unwrap();
        assert_eq!(text.lines().count(), 9);

        // Kill after 4 evaluations (any interrupted run leaves a
        // prefix-complete checkpoint), then resume: telemetry must show
        // exactly 5 fresh evaluations and 4 restores, and the outcomes
        // must be identical.
        let partial: String = text.lines().take(4).map(|l| format!("{l}\n")).collect();
        std::fs::write(&checkpoint, partial).unwrap();
        let spec = characterizer.spec(Shard::full(), Some(checkpoint), true);
        let metrics = Metrics::new();
        let resumed = characterizer.run_shard(situations, &spec, Some(&metrics));
        assert_eq!(resumed.stats.evaluated, 5);
        assert_eq!(resumed.stats.restored, 4);
        assert_eq!(metrics.counter(Counter::CampaignEvaluations), 5);
        assert_eq!(metrics.counter(Counter::CampaignRestored), 4);
        assert_eq!(resumed.entries, full.entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_params_round_trip() {
        let characterizer = tiny();
        let spec = characterizer.spec(Shard::full(), None, false);
        let back = Characterizer::from_params(&spec.params).unwrap();
        assert_eq!(back.config().track_length_m, characterizer.config().track_length_m);
        assert_eq!(back.config().seed, characterizer.config().seed);
        assert_eq!(back.fingerprint(), spec.config_hash);
        assert!(Characterizer::from_params(&Value::Null).is_err());
    }

    #[test]
    fn candidate_seeds_do_not_collide() {
        // Every (situation, candidate) pair across the full Table III
        // grid must map to a distinct sensor seed.
        let characterizer = Characterizer::new(CharacterizeConfig::new().with_seed(7));
        let mut seeds = std::collections::HashSet::new();
        for (si, situation) in TABLE3_SITUATIONS.iter().enumerate() {
            for tuning in candidate_tunings(situation) {
                assert!(
                    seeds.insert(characterizer.candidate_seed(si, &tuning)),
                    "seed collision at situation {si}, tuning {tuning:?}"
                );
            }
        }
        // And the base seed must actually matter.
        let other = Characterizer::new(CharacterizeConfig::new().with_seed(8));
        assert_ne!(
            characterizer.candidate_seed(0, &KnobTuning::conservative()),
            other.candidate_seed(0, &KnobTuning::conservative())
        );
    }

    #[test]
    fn sensor_model_enters_the_fingerprint() {
        let nominal = Characterizer::new(CharacterizeConfig::new());
        let drifted = Characterizer::new(
            CharacterizeConfig::new()
                .with_sensor(SensorConfig { read_noise: 0.08, ..SensorConfig::default() }),
        );
        assert_ne!(nominal.fingerprint(), drifted.fingerprint());
    }

    #[test]
    fn knob_store_round_trips_and_versions() {
        let situations = &TABLE3_SITUATIONS[0..1];
        let characterizer = tiny();
        let store = characterizer.characterize_store(situations);
        assert_eq!(store.version(), 1);
        assert_eq!(store.config_hash(), characterizer.fingerprint());
        assert_eq!(store.table().len(), 1);
        // The prior and its sweep MAE are queryable.
        let prior = store.prior(&situations[0]);
        let prior_mae = store.prior_mae(&situations[0], &prior).expect("winner has a MAE");
        for tuning in store.candidates(&situations[0]) {
            if let Some(mae) = store.prior_mae(&situations[0], &tuning) {
                assert!(prior_mae <= mae, "prior must be the best-MAE candidate");
            }
        }
        // Round trip.
        let back = KnobStore::from_json(&store.to_json()).unwrap();
        assert_eq!(back, store);
        // Runtime updates bump the version and replace entries.
        let mut live = back;
        live.record_outcome(&situations[0], prior, Some(0.123));
        assert_eq!(live.version(), 2);
        assert_eq!(live.prior_mae(&situations[0], &prior), Some(0.123));
        // Unknown schema is rejected.
        let alien = store.to_json().replace(KNOB_STORE_SCHEMA, "lkas-knobstore-v999");
        assert!(KnobStore::from_json(&alien).is_err());
    }

    #[test]
    fn bare_table_store_serves_lookup_prior() {
        let store = KnobStore::from_table(KnobTable::paper_table3());
        let prior = store.prior(&TABLE3_SITUATIONS[0]);
        assert_eq!(prior, KnobTable::paper_table3().lookup(&TABLE3_SITUATIONS[0]));
        assert_eq!(store.prior_mae(&TABLE3_SITUATIONS[0], &prior), None);
        assert_eq!(store.config_hash(), "");
    }
}
