//! The five-stage ISP pipeline and its approximation knobs (Table II).
//!
//! Stage order follows the paper's Fig. 3(a): demosaic → denoise →
//! color map → gamut map → tone map. Every configuration S0–S8 keeps the
//! demosaic (a Bayer frame is useless downstream otherwise) and skips a
//! subset of the remaining stages; skipping stages reduces latency
//! (profiled runtimes live in `lkas-platform`) at the cost of image
//! quality, and how much quality matters depends on the *situation* —
//! which is exactly the trade-off the paper's method exploits.
//!
//! # Memory discipline
//!
//! The stage implementations are in-place: [`IspStage::apply`] mutates
//! an RGB frame using a [`Scratch`] for intermediates, and
//! [`IspPipeline::process_into`] writes into a caller-owned output
//! frame. Steady-state processing at stable frame dimensions performs no
//! heap allocations (see `lkas_imaging::pool`). Demosaic and denoise are
//! tiled row-band parallel on the scratch's executor; every tile runs
//! identical per-pixel arithmetic on disjoint rows, so the output is
//! byte-identical for any thread count.
//!
//! # Kernel backends
//!
//! Each hot interior exists in the per-pixel scalar reference form and
//! as a chunked-lane data-parallel kernel, selected per pipeline via
//! [`KernelBackend`] (see `crate::kernel` for the policy). The exact
//! lane kernels (`KernelBackend::lanes()`, the default) evaluate the
//! scalar expressions in the same floating-point order — restructured
//! only for vectorizable control flow — so they are bit-identical to
//! the scalar reference. Two lane-only specializations carry most of
//! the speedup:
//!
//! * the **final nonlinear stage is fused with the 8-bit quantizer**:
//!   tone map and gamut map are monotone, so `round(clamp(f(x))·255)`
//!   is a nondecreasing step function of `x`, and the 255 step
//!   boundaries can be bisected *exactly* over the f32 bit space at
//!   startup. The per-pixel `powf`/`exp` then collapses into a
//!   branchless 8-probe binary search over a 256-entry threshold table
//!   — bit-identical to stage-then-quantize by construction;
//! * the non-final gamut map runs a **masked chunk kernel**: a chunk
//!   whose maximum stays below the knee (the common case on road
//!   scenes) is written back with the vectorized identity path, and
//!   only knee-crossing chunks fall back to the scalar expression.
//!
//! The fixed-point backend (`KernelBackend::lanes_fixed()`) swaps the
//! demosaic/denoise interiors for 16-bit Q2.14 integer lanes; those are
//! tolerance-banded (see [`DM_Q14_EPS`] / [`DN_Q14_EPS`]) rather than
//! bit-identical, and never run in the default pipeline.

use crate::image::{BayerChannel, RawImage, RgbImage};
use crate::kernel::KernelBackend;
use crate::pool::Scratch;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// One ISP stage, in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IspStage {
    /// DM — demosaic (Bayer → RGB, bilinear).
    Demosaic,
    /// DN — denoise (3×3 Gaussian per channel).
    Denoise,
    /// CM — color map (color-correction matrix; inverts the sensor
    /// crosstalk).
    ColorMap,
    /// GM — gamut map (soft-knee compression of out-of-gamut values).
    GamutMap,
    /// TM — tone map (sRGB-like gamma encoding).
    ToneMap,
}

impl IspStage {
    /// The paper's two-letter acronym for this stage.
    pub fn acronym(self) -> &'static str {
        match self {
            IspStage::Demosaic => "DM",
            IspStage::Denoise => "DN",
            IspStage::ColorMap => "CM",
            IspStage::GamutMap => "GM",
            IspStage::ToneMap => "TM",
        }
    }

    /// Applies this stage to an RGB frame in place with the scalar
    /// reference kernels.
    ///
    /// This is the single dispatch point for the RGB-domain stages
    /// (denoise takes its ping-pong buffer from the scratch pool and
    /// tiles on the scratch executor; the elementwise stages ignore the
    /// scratch). `Demosaic` is a no-op here: it changes domains
    /// (RAW → RGB) and is driven by [`demosaic_into`] /
    /// [`IspPipeline::process_into`] instead.
    pub fn apply(&self, scratch: &mut Scratch, img: &mut RgbImage) {
        self.apply_with(KernelBackend::Scalar, scratch, img);
    }

    /// Applies this stage with an explicit [`KernelBackend`].
    ///
    /// Exact backends produce bit-identical output; the fixed-point
    /// backend substitutes the Q2.14 denoise interior (demosaic is not
    /// an RGB-domain stage and dispatches in [`demosaic_into_with`]).
    pub fn apply_with(&self, backend: KernelBackend, scratch: &mut Scratch, img: &mut RgbImage) {
        match backend {
            KernelBackend::Scalar => match self {
                IspStage::Demosaic => {}
                IspStage::Denoise => denoise_in_place(img, scratch, false),
                IspStage::ColorMap => color_map_in_place(img),
                IspStage::GamutMap => gamut_map_in_place(img),
                IspStage::ToneMap => tone_map_in_place(img),
            },
            KernelBackend::Lanes { fixed_point } => match self {
                IspStage::Demosaic => {}
                IspStage::Denoise => {
                    if fixed_point {
                        denoise_in_place_q14(img, scratch);
                    } else {
                        denoise_in_place(img, scratch, true);
                    }
                }
                IspStage::ColorMap => color_map_in_place(img),
                IspStage::GamutMap => gamut_map_lanes(img),
                IspStage::ToneMap => tone_map_in_place(img),
            },
        }
    }
}

/// An ISP approximation configuration: which stages run.
///
/// `S0` is the exact pipeline; `S1`–`S8` are the approximations of the
/// paper's Table II. The demosaic stage is part of every configuration.
///
/// # Example
///
/// ```
/// use lkas_imaging::isp::{IspConfig, IspStage};
///
/// assert_eq!(IspConfig::S0.stages().len(), 5);
/// assert!(IspConfig::S7.stages().contains(&IspStage::GamutMap));
/// assert!(!IspConfig::S7.stages().contains(&IspStage::ToneMap));
/// assert_eq!(IspConfig::S3.name(), "S3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are the paper's opaque config IDs
pub enum IspConfig {
    S0,
    S1,
    S2,
    S3,
    S4,
    S5,
    S6,
    S7,
    S8,
}

impl IspConfig {
    /// All nine configurations in Table II order.
    pub const ALL: [IspConfig; 9] = [
        IspConfig::S0,
        IspConfig::S1,
        IspConfig::S2,
        IspConfig::S3,
        IspConfig::S4,
        IspConfig::S5,
        IspConfig::S6,
        IspConfig::S7,
        IspConfig::S8,
    ];

    /// The stages this configuration executes (Table II).
    pub fn stages(self) -> &'static [IspStage] {
        use IspStage::*;
        match self {
            IspConfig::S0 => &[Demosaic, Denoise, ColorMap, GamutMap, ToneMap],
            IspConfig::S1 => &[Demosaic, ColorMap, GamutMap, ToneMap],
            IspConfig::S2 => &[Demosaic, Denoise, GamutMap, ToneMap],
            IspConfig::S3 => &[Demosaic, Denoise, ColorMap, ToneMap],
            IspConfig::S4 => &[Demosaic, Denoise, ColorMap, GamutMap],
            IspConfig::S5 => &[Demosaic, Denoise],
            IspConfig::S6 => &[Demosaic, ColorMap],
            IspConfig::S7 => &[Demosaic, GamutMap],
            IspConfig::S8 => &[Demosaic, ToneMap],
        }
    }

    /// The paper's name for this configuration (`"S0"` … `"S8"`).
    pub fn name(self) -> &'static str {
        match self {
            IspConfig::S0 => "S0",
            IspConfig::S1 => "S1",
            IspConfig::S2 => "S2",
            IspConfig::S3 => "S3",
            IspConfig::S4 => "S4",
            IspConfig::S5 => "S5",
            IspConfig::S6 => "S6",
            IspConfig::S7 => "S7",
            IspConfig::S8 => "S8",
        }
    }

    /// `true` if the given stage is part of this configuration.
    pub fn has_stage(self, stage: IspStage) -> bool {
        self.stages().contains(&stage)
    }
}

impl std::fmt::Display for IspConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of code levels of the ISP output (8-bit RGB, as produced by the
/// real pipeline and consumed by TensorRT in the paper's setup).
pub const OUTPUT_LEVELS: u32 = 256;

/// A configurable ISP pipeline.
///
/// # Example
///
/// ```
/// use lkas_imaging::image::RgbImage;
/// use lkas_imaging::isp::{IspConfig, IspPipeline};
/// use lkas_imaging::kernel::KernelBackend;
/// use lkas_imaging::pool::Scratch;
/// use lkas_imaging::sensor::{Sensor, SensorConfig};
///
/// let scene = RgbImage::filled(16, 16, [0.2, 0.6, 0.2]);
/// let raw = Sensor::new(SensorConfig::default(), 0).capture(&scene, 1.0);
/// // One-shot convenience…
/// let full = IspPipeline::new(IspConfig::S0).process(&raw);
/// // …or the in-place path with reusable scratch memory, and an
/// // explicit kernel backend (the scalar reference here).
/// let mut scratch = Scratch::new();
/// let mut approx = RgbImage::new(16, 16);
/// IspPipeline::new(IspConfig::S5)
///     .with_backend(KernelBackend::Scalar)
///     .process_into(&raw, &mut scratch, &mut approx);
/// assert_eq!(full.width(), approx.width());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IspPipeline {
    config: IspConfig,
    backend: KernelBackend,
}

impl IspPipeline {
    /// Creates a pipeline running the given configuration on the default
    /// (exact lane) kernel backend.
    pub fn new(config: IspConfig) -> Self {
        IspPipeline { config, backend: KernelBackend::default() }
    }

    /// Selects the kernel backend (builder style).
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> IspConfig {
        self.config
    }

    /// The active kernel backend.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// Replaces the active configuration (used by the runtime
    /// reconfiguration logic; the swap is free, matching a register write
    /// on the real ISP). The kernel backend is preserved.
    pub fn set_config(&mut self, config: IspConfig) {
        self.config = config;
    }

    /// Runs the configured stages on a RAW frame, writing the quantized
    /// 8-bit-equivalent RGB output into `out` (resized as needed).
    ///
    /// This is the steady-state entry point: with a long-lived `scratch`
    /// and a reused `out`, processing at stable frame dimensions
    /// performs no heap allocations (when `scratch` is single-threaded)
    /// and the output is byte-identical to [`IspPipeline::process`] at
    /// any scratch thread count. Exact backends (everything but the
    /// fixed-point lanes) are additionally byte-identical to each other.
    pub fn process_into(&self, raw: &RawImage, scratch: &mut Scratch, out: &mut RgbImage) {
        demosaic_into_with(raw, scratch, out, self.backend);
        match self.backend {
            KernelBackend::Scalar => {
                for stage in self.config.stages() {
                    stage.apply(scratch, out);
                }
                out.quantize(OUTPUT_LEVELS);
            }
            KernelBackend::Lanes { .. } => {
                let (last, rest) =
                    self.config.stages().split_last().expect("every config demosaics");
                for stage in rest {
                    stage.apply_with(self.backend, scratch, out);
                }
                // A trailing tone map fuses with the quantizer: one
                // table walk replaces the per-pixel `powf` plus the
                // separate quantize pass, bit-identically. Only the
                // tone map earns the fusion — its transcendental is
                // unconditional, so the 8-probe table walk is a net
                // win; a trailing gamut map is a near-free `max` for
                // below-knee pixels and runs faster un-fused.
                match last {
                    IspStage::ToneMap => fused_quantize_in_place(out, tm_quant_thresholds()),
                    stage => {
                        stage.apply_with(self.backend, scratch, out);
                        out.quantize(OUTPUT_LEVELS);
                    }
                }
            }
        }
    }

    /// Runs the configured stages on a RAW frame and returns the
    /// quantized 8-bit-equivalent RGB output.
    ///
    /// Convenience wrapper over [`IspPipeline::process_into`] that
    /// allocates a fresh output frame and one-shot [`Scratch`] per call;
    /// loops that care about allocation pressure should hold their own
    /// scratch and call `process_into`.
    pub fn process(&self, raw: &RawImage) -> RgbImage {
        let mut scratch = Scratch::new();
        let mut out = RgbImage::new(raw.width(), raw.height());
        self.process_into(raw, &mut scratch, &mut out);
        out
    }
}

// ---------------------------------------------------------------------
// Demosaic (scalar reference + exact lane + Q2.14 lane kernels)
// ---------------------------------------------------------------------

/// Average of the in-bounds 3×3 neighbors holding channel `chan` — the
/// border path of the demosaic (the interior kernels walk the same
/// neighbors in the same row-major scan order, so interior and border
/// agree bit-exactly wherever a pixel has all nine neighbors).
fn dm_border_sample(raw: &RawImage, cx: i64, cy: i64, chan: BayerChannel) -> f32 {
    let (w, h) = (raw.width(), raw.height());
    let mut sum = 0.0;
    let mut cnt = 0u32;
    for dy in -1..=1_i64 {
        for dx in -1..=1_i64 {
            let x = cx + dx;
            let y = cy + dy;
            if x < 0 || y < 0 || x >= w as i64 || y >= h as i64 {
                continue;
            }
            let (x, y) = (x as usize, y as usize);
            let ch = raw.channel_at(x, y);
            let is_green = matches!(ch, BayerChannel::GreenR | BayerChannel::GreenB);
            let want_green = matches!(chan, BayerChannel::GreenR | BayerChannel::GreenB);
            if ch == chan || (is_green && want_green) {
                sum += raw.get(x, y);
                cnt += 1;
            }
        }
    }
    if cnt == 0 {
        0.0
    } else {
        sum / cnt as f32
    }
}

// The four interior phase kernels of the RGGB mosaic. Scalar and lane
// rows call these same functions, so the two paths share one set of
// floating-point expressions — bit-identity between the backends is
// structural, not coincidental. Neighbor sums accumulate in the same
// row-major scan order as `dm_border_sample`'s generic walk.

/// Even row, even x: Red photosite.
#[inline(always)]
fn dm_even_even(above: &[f32], cur: &[f32], below: &[f32], x: usize, px: &mut [f32]) {
    px[0] = cur[x];
    px[1] = (above[x] + cur[x - 1] + cur[x + 1] + below[x]) / 4.0;
    px[2] = (above[x - 1] + above[x + 1] + below[x - 1] + below[x + 1]) / 4.0;
}

/// Even row, odd x: GreenR photosite.
#[inline(always)]
fn dm_even_odd(above: &[f32], cur: &[f32], below: &[f32], x: usize, px: &mut [f32]) {
    px[0] = (cur[x - 1] + cur[x + 1]) / 2.0;
    px[1] = (above[x - 1] + above[x + 1] + cur[x] + below[x - 1] + below[x + 1]) / 5.0;
    px[2] = (above[x] + below[x]) / 2.0;
}

/// Odd row, even x: GreenB photosite.
#[inline(always)]
fn dm_odd_even(above: &[f32], cur: &[f32], below: &[f32], x: usize, px: &mut [f32]) {
    px[0] = (above[x] + below[x]) / 2.0;
    px[1] = (above[x - 1] + above[x + 1] + cur[x] + below[x - 1] + below[x + 1]) / 5.0;
    px[2] = (cur[x - 1] + cur[x + 1]) / 2.0;
}

/// Odd row, odd x: Blue photosite.
#[inline(always)]
fn dm_odd_odd(above: &[f32], cur: &[f32], below: &[f32], x: usize, px: &mut [f32]) {
    px[0] = (above[x - 1] + above[x + 1] + below[x - 1] + below[x + 1]) / 4.0;
    px[1] = (above[x] + cur[x - 1] + cur[x + 1] + below[x]) / 4.0;
    px[2] = cur[x];
}

/// Demosaics the rows starting at absolute row `y0` into `band`
/// (interleaved RGB, `band.len() / (3 * raw.width())` rows) with the
/// scalar reference interior (per-x parity branch).
fn demosaic_rows(raw: &RawImage, band: &mut [f32], y0: usize) {
    let (w, h) = (raw.width(), raw.height());
    let data = raw.as_slice();
    for (ry, out_row) in band.chunks_exact_mut(w * 3).enumerate() {
        let y = y0 + ry;
        if y == 0 || y + 1 >= h {
            for x in 0..w {
                dm_border_pixel(raw, &mut out_row[x * 3..x * 3 + 3], x, y);
            }
            continue;
        }
        dm_border_pixel(raw, &mut out_row[0..3], 0, y);
        dm_border_pixel(raw, &mut out_row[(w - 1) * 3..w * 3], w - 1, y);
        let above = &data[(y - 1) * w..y * w];
        let cur = &data[y * w..(y + 1) * w];
        let below = &data[(y + 1) * w..(y + 2) * w];
        if y & 1 == 0 {
            // Even row: Red (even x) / GreenR (odd x) photosites.
            for x in 1..w - 1 {
                let px = &mut out_row[x * 3..x * 3 + 3];
                if x & 1 == 0 {
                    dm_even_even(above, cur, below, x, px);
                } else {
                    dm_even_odd(above, cur, below, x, px);
                }
            }
        } else {
            // Odd row: GreenB (even x) / Blue (odd x) photosites.
            for x in 1..w - 1 {
                let px = &mut out_row[x * 3..x * 3 + 3];
                if x & 1 == 0 {
                    dm_odd_even(above, cur, below, x, px);
                } else {
                    dm_odd_odd(above, cur, below, x, px);
                }
            }
        }
    }
}

/// Lane variant of [`demosaic_rows`]: the interior is phase-split into
/// a branch-free pair loop (one even-x and one odd-x pixel per
/// iteration, six contiguous output lanes) so the parity test leaves
/// the hot loop and the neighbor loads are shared between the two
/// phases. Same phase kernels, same expressions — bit-identical.
fn demosaic_rows_lanes(raw: &RawImage, band: &mut [f32], y0: usize) {
    let (w, h) = (raw.width(), raw.height());
    if w < 4 {
        return demosaic_rows(raw, band, y0);
    }
    let data = raw.as_slice();
    for (ry, out_row) in band.chunks_exact_mut(w * 3).enumerate() {
        let y = y0 + ry;
        if y == 0 || y + 1 >= h {
            for x in 0..w {
                dm_border_pixel(raw, &mut out_row[x * 3..x * 3 + 3], x, y);
            }
            continue;
        }
        dm_border_pixel(raw, &mut out_row[0..3], 0, y);
        dm_border_pixel(raw, &mut out_row[(w - 1) * 3..w * 3], w - 1, y);
        let above = &data[(y - 1) * w..y * w];
        let cur = &data[y * w..(y + 1) * w];
        let below = &data[(y + 1) * w..(y + 2) * w];
        // Interior x ∈ [1, w−2]: a lone odd column, then (even, odd)
        // pairs, then the lone even column w−2 (w is even for Bayer).
        if y & 1 == 0 {
            dm_even_odd(above, cur, below, 1, &mut out_row[3..6]);
            let mut x = 2;
            while x + 1 < w - 1 {
                let px = &mut out_row[x * 3..x * 3 + 6];
                dm_even_even(above, cur, below, x, &mut px[0..3]);
                dm_even_odd(above, cur, below, x + 1, &mut px[3..6]);
                x += 2;
            }
            dm_even_even(above, cur, below, w - 2, &mut out_row[(w - 2) * 3..(w - 1) * 3]);
        } else {
            dm_odd_odd(above, cur, below, 1, &mut out_row[3..6]);
            let mut x = 2;
            while x + 1 < w - 1 {
                let px = &mut out_row[x * 3..x * 3 + 6];
                dm_odd_even(above, cur, below, x, &mut px[0..3]);
                dm_odd_odd(above, cur, below, x + 1, &mut px[3..6]);
                x += 2;
            }
            dm_odd_even(above, cur, below, w - 2, &mut out_row[(w - 2) * 3..(w - 1) * 3]);
        }
    }
}

/// Fills one border pixel through the generic in-bounds neighbor walk.
fn dm_border_pixel(raw: &RawImage, px: &mut [f32], x: usize, y: usize) {
    px[0] = dm_border_sample(raw, x as i64, y as i64, BayerChannel::Red);
    px[1] = dm_border_sample(raw, x as i64, y as i64, BayerChannel::GreenR);
    px[2] = dm_border_sample(raw, x as i64, y as i64, BayerChannel::Blue);
}

/// Bilinear demosaic of an RGGB Bayer mosaic into a caller-owned RGB
/// frame (resized as needed), tiled row-band parallel on the scratch
/// executor, using the scalar reference kernels. Byte-identical output
/// for any thread count.
pub fn demosaic_into(raw: &RawImage, scratch: &mut Scratch, out: &mut RgbImage) {
    demosaic_into_with(raw, scratch, out, KernelBackend::Scalar);
}

/// [`demosaic_into`] with an explicit [`KernelBackend`].
///
/// The scalar and exact-lane backends are bit-identical and tile
/// row-band parallel; the fixed-point backend runs the sequential
/// Q2.14 kernel (see [`DM_Q14_EPS`] for its tolerance band).
pub fn demosaic_into_with(
    raw: &RawImage,
    scratch: &mut Scratch,
    out: &mut RgbImage,
    backend: KernelBackend,
) {
    let (w, h) = (raw.width(), raw.height());
    out.reshape(w, h);
    let rows: fn(&RawImage, &mut [f32], usize) = match backend {
        KernelBackend::Scalar => demosaic_rows,
        KernelBackend::Lanes { fixed_point: false } => demosaic_rows_lanes,
        KernelBackend::Lanes { fixed_point: true } => {
            return demosaic_into_q14(raw, scratch, out);
        }
    };
    let exec = scratch.executor;
    if exec.threads() == 1 {
        // Sequential fast path: no job vectors, no allocations.
        rows(raw, out.as_mut_slice(), 0);
        return;
    }
    let band_rows = (h + exec.threads() - 1) / exec.threads();
    let jobs: Vec<(usize, &mut [f32])> = out
        .as_mut_slice()
        .chunks_mut(band_rows * w * 3)
        .enumerate()
        .map(|(i, band)| (i * band_rows, band))
        .collect();
    exec.run(jobs, |(y0, band)| rows(raw, band, y0));
}

// ---------------------------------------------------------------------
// Q2.14 fixed-point lanes (tolerance-banded, never the default)
// ---------------------------------------------------------------------

/// Q2.14 scale: 16-bit signed lanes covering (−2, +2) — signed because
/// read noise drives RAW photosites slightly negative, and clamping
/// them would cost far more accuracy than the format's quantization.
const Q14_ONE: f32 = 16384.0;

/// Declared tolerance band of the Q2.14 demosaic against the scalar
/// f32 reference: |lanes-q14 − scalar| ≤ 2⁻¹⁰ per channel value.
///
/// Derivation: input quantization contributes ≤ 2⁻¹⁵ (half a Q2.14
/// step), the rounded neighbor-average division ≤ 2⁻¹⁴, so the true
/// worst case is ≲ 10⁻⁴; 2⁻¹⁰ ≈ 9.8·10⁻⁴ leaves an order-of-magnitude
/// margin. Enforced by `gate-kernel-equivalence` and the imaging
/// proptests.
pub const DM_Q14_EPS: f32 = 1.0 / 1024.0;

/// Declared tolerance band of the Q2.14 denoise against the scalar f32
/// reference (same derivation as [`DM_Q14_EPS`], two rounded passes).
pub const DN_Q14_EPS: f32 = 1.0 / 1024.0;

#[inline(always)]
fn to_q14(v: f32) -> i16 {
    (v.clamp(-1.999, 1.999) * Q14_ONE).round() as i16
}

#[inline(always)]
fn from_q14(q: i32) -> f32 {
    // i32 → f32 is exact for these magnitudes; /2¹⁴ is a power of two.
    q as f32 / Q14_ONE
}

#[inline(always)]
fn rdiv2(s: i32) -> i32 {
    (s + 1) >> 1
}

#[inline(always)]
fn rdiv4(s: i32) -> i32 {
    (s + 2) >> 2
}

#[inline(always)]
fn rdiv5(s: i32) -> i32 {
    (s + 2) / 5
}

/// Q2.14 demosaic: quantizes the RAW plane to 16-bit lanes, runs the
/// integer phase kernels (exact shifts for /2 and /4, rounded division
/// for /5), and dequantizes into the RGB output. Borders round-trip the
/// scalar border sampler through Q2.14 so the whole frame shares one
/// error model. Sequential (the integer interior outruns the tiled f32
/// path on its own); within [`DM_Q14_EPS`] of [`demosaic_into`].
fn demosaic_into_q14(raw: &RawImage, scratch: &mut Scratch, out: &mut RgbImage) {
    let (w, h) = (raw.width(), raw.height());
    let mut plane = scratch.pool.take_plane_i16(w * h);
    for (q, &v) in plane.iter_mut().zip(raw.as_slice()) {
        *q = to_q14(v);
    }
    let dst = out.as_mut_slice();
    for y in 0..h {
        let out_row = &mut dst[y * w * 3..(y + 1) * w * 3];
        if y == 0 || y + 1 >= h {
            for x in 0..w {
                dm_border_pixel_q14(raw, &mut out_row[x * 3..x * 3 + 3], x, y);
            }
            continue;
        }
        dm_border_pixel_q14(raw, &mut out_row[0..3], 0, y);
        dm_border_pixel_q14(raw, &mut out_row[(w - 1) * 3..w * 3], w - 1, y);
        let above = &plane[(y - 1) * w..y * w];
        let cur = &plane[y * w..(y + 1) * w];
        let below = &plane[(y + 1) * w..(y + 2) * w];
        let even_row = y & 1 == 0;
        for x in 1..w - 1 {
            let px = &mut out_row[x * 3..x * 3 + 3];
            let (a0, a1, a2) = (above[x - 1] as i32, above[x] as i32, above[x + 1] as i32);
            let (c0, c1, c2) = (cur[x - 1] as i32, cur[x] as i32, cur[x + 1] as i32);
            let (b0, b1, b2) = (below[x - 1] as i32, below[x] as i32, below[x + 1] as i32);
            let cross = rdiv4(a1 + c0 + c2 + b1);
            let diag = rdiv4(a0 + a2 + b0 + b2);
            let horiz = rdiv2(c0 + c2);
            let vert = rdiv2(a1 + b1);
            let plus = rdiv5(a0 + a2 + c1 + b0 + b2);
            let (r, g, b) = match (even_row, x & 1 == 0) {
                (true, true) => (c1, cross, diag),
                (true, false) => (horiz, plus, vert),
                (false, true) => (vert, plus, horiz),
                (false, false) => (diag, cross, c1),
            };
            px[0] = from_q14(r);
            px[1] = from_q14(g);
            px[2] = from_q14(b);
        }
    }
    scratch.pool.put_plane_i16(plane);
}

/// Border pixel of the Q2.14 demosaic: the scalar sampler's value,
/// round-tripped through the Q2.14 format.
fn dm_border_pixel_q14(raw: &RawImage, px: &mut [f32], x: usize, y: usize) {
    let mut tmp = [0.0f32; 3];
    dm_border_pixel(raw, &mut tmp, x, y);
    for (d, v) in px.iter_mut().zip(tmp) {
        *d = from_q14(to_q14(v) as i32);
    }
}

// ---------------------------------------------------------------------
// Denoise (scalar reference + exact lane + Q2.14 lane kernels)
// ---------------------------------------------------------------------

/// The separable binomial denoise taps.
const DN_K: [f32; 3] = [0.25, 0.5, 0.25];

/// One 3-tap accumulation, shared verbatim by the scalar and lane rows
/// (same operations in the same order ⇒ bit-identical backends).
#[inline(always)]
fn dn_tap3(a: f32, b: f32, c: f32) -> f32 {
    let mut acc = 0.0f32;
    acc += DN_K[0] * a;
    acc += DN_K[1] * b;
    acc += DN_K[2] * c;
    acc
}

/// Horizontal pass of the separable denoise: reads `src`, writes the
/// rows starting at `y0` into `band`.
///
/// Interior columns skip the tap clamping (the accumulation order is
/// unchanged, so the result stays bit-exact with the clamped walk);
/// only the two border columns pay for it.
fn denoise_horizontal_rows(src: &RgbImage, band: &mut [f32], y0: usize) {
    let w = src.width();
    let data = src.as_slice();
    for (ry, out_row) in band.chunks_exact_mut(w * 3).enumerate() {
        let y = y0 + ry;
        let row = &data[y * w * 3..(y + 1) * w * 3];
        if w < 2 {
            for x in 0..w {
                dn_clamped_h(row, w, x, &mut out_row[x * 3..x * 3 + 3]);
            }
            continue;
        }
        dn_clamped_h(row, w, 0, &mut out_row[0..3]);
        for x in 1..w - 1 {
            let i = x * 3;
            for c in 0..3 {
                out_row[i + c] = dn_tap3(row[i - 3 + c], row[i + c], row[i + 3 + c]);
            }
        }
        dn_clamped_h(row, w, w - 1, &mut out_row[(w - 1) * 3..w * 3]);
    }
}

/// Lane variant of [`denoise_horizontal_rows`]: the interior flattens
/// to one elementwise 3-tap loop over three shifted subslices — a pure
/// map the compiler vectorizes across the full row. Same taps, same
/// accumulation order — bit-identical to the scalar pass.
fn denoise_horizontal_rows_lanes(src: &RgbImage, band: &mut [f32], y0: usize) {
    let w = src.width();
    if w < 2 {
        return denoise_horizontal_rows(src, band, y0);
    }
    let data = src.as_slice();
    let n = (w - 2) * 3;
    for (ry, out_row) in band.chunks_exact_mut(w * 3).enumerate() {
        let y = y0 + ry;
        let row = &data[y * w * 3..(y + 1) * w * 3];
        dn_clamped_h(row, w, 0, &mut out_row[0..3]);
        let (left, mid, right) = (&row[..n], &row[3..3 + n], &row[6..6 + n]);
        let dst = &mut out_row[3..3 + n];
        for i in 0..n {
            dst[i] = dn_tap3(left[i], mid[i], right[i]);
        }
        dn_clamped_h(row, w, w - 1, &mut out_row[(w - 1) * 3..w * 3]);
    }
}

/// Clamped-tap horizontal border column.
fn dn_clamped_h(row: &[f32], w: usize, x: usize, out: &mut [f32]) {
    let mut acc = [0.0f32; 3];
    for (t, &k) in DN_K.iter().enumerate() {
        let xi = (x as i64 + t as i64 - 1).clamp(0, w as i64 - 1) as usize;
        for c in 0..3 {
            acc[c] += k * row[xi * 3 + c];
        }
    }
    out.copy_from_slice(&acc);
}

/// Vertical pass of the separable denoise: reads `tmp` (the horizontal
/// pass output), writes the rows starting at `y0` into `band`.
///
/// Interior rows read three full row slices in one elementwise 3-tap
/// loop (already the lane form — both backends share it); the first and
/// last image rows use the generic clamped walk.
fn denoise_vertical_rows(tmp: &RgbImage, band: &mut [f32], y0: usize) {
    let (w, h) = (tmp.width(), tmp.height());
    let data = tmp.as_slice();
    for (ry, out_row) in band.chunks_exact_mut(w * 3).enumerate() {
        let y = y0 + ry;
        if y == 0 || y + 1 >= h {
            for x in 0..w {
                let mut acc = [0.0f32; 3];
                for (t, &k) in DN_K.iter().enumerate() {
                    let yi = (y as i64 + t as i64 - 1).clamp(0, h as i64 - 1) as usize;
                    for c in 0..3 {
                        acc[c] += k * data[(yi * w + x) * 3 + c];
                    }
                }
                out_row[x * 3..x * 3 + 3].copy_from_slice(&acc);
            }
            continue;
        }
        let above = &data[(y - 1) * w * 3..y * w * 3];
        let cur = &data[y * w * 3..(y + 1) * w * 3];
        let below = &data[(y + 1) * w * 3..(y + 2) * w * 3];
        for i in 0..w * 3 {
            out_row[i] = dn_tap3(above[i], cur[i], below[i]);
        }
    }
}

/// 3×3 Gaussian blur (σ ≈ 0.85, separable binomial kernel) applied per
/// channel in place, ping-ponging through a pooled buffer. Both passes
/// tile row-band parallel; the vertical pass starts only after the full
/// horizontal pass finished (the executor joins its workers), so
/// cross-band reads see complete data and the result is byte-identical
/// for any thread count. `lanes` selects the flattened horizontal
/// interior (bit-identical either way).
fn denoise_in_place(img: &mut RgbImage, scratch: &mut Scratch, lanes: bool) {
    let (w, h) = (img.width(), img.height());
    let horizontal: fn(&RgbImage, &mut [f32], usize) =
        if lanes { denoise_horizontal_rows_lanes } else { denoise_horizontal_rows };
    let mut tmp = scratch.pool.take_rgb(w, h);
    let exec = scratch.executor;
    if exec.threads() == 1 {
        horizontal(img, tmp.as_mut_slice(), 0);
        denoise_vertical_rows(&tmp, img.as_mut_slice(), 0);
    } else {
        let band_rows = (h + exec.threads() - 1) / exec.threads();
        let src: &RgbImage = img;
        let jobs: Vec<(usize, &mut [f32])> = tmp
            .as_mut_slice()
            .chunks_mut(band_rows * w * 3)
            .enumerate()
            .map(|(i, band)| (i * band_rows, band))
            .collect();
        exec.run(jobs, |(y0, band)| horizontal(src, band, y0));
        let jobs: Vec<(usize, &mut [f32])> = img
            .as_mut_slice()
            .chunks_mut(band_rows * w * 3)
            .enumerate()
            .map(|(i, band)| (i * band_rows, band))
            .collect();
        let tmp_ref = &tmp;
        exec.run(jobs, |(y0, band)| denoise_vertical_rows(tmp_ref, band, y0));
    }
    scratch.pool.put_rgb(tmp);
}

/// Q2.14 denoise: quantizes the frame to 16-bit lanes and runs both
/// binomial passes as exact integer shifts, `(a + 2b + c + 2) >> 2` —
/// the (1, 2, 1)/4 taps are exactly representable, so the only error
/// sources are the input quantization and the per-pass rounding.
/// Sequential; within [`DN_Q14_EPS`] of the scalar reference.
fn denoise_in_place_q14(img: &mut RgbImage, scratch: &mut Scratch) {
    let (w, h) = (img.width(), img.height());
    let n = w * h * 3;
    let row_n = w * 3;
    let mut a = scratch.pool.take_plane_i16(n);
    let mut b = scratch.pool.take_plane_i16(n);
    for (q, &v) in a.iter_mut().zip(img.as_slice()) {
        *q = to_q14(v);
    }
    // Horizontal pass (a → b), clamped taps at the row ends.
    for y in 0..h {
        let src = &a[y * row_n..(y + 1) * row_n];
        let dst = &mut b[y * row_n..(y + 1) * row_n];
        for c in 0..3 {
            dst[c] = dn_tap3_q14(src[c], src[c], src[3 + c]);
            dst[row_n - 3 + c] =
                dn_tap3_q14(src[row_n - 6 + c], src[row_n - 3 + c], src[row_n - 3 + c]);
        }
        for i in 3..row_n - 3 {
            dst[i] = dn_tap3_q14(src[i - 3], src[i], src[i + 3]);
        }
    }
    // Vertical pass (b → img), clamped taps at the first/last row.
    let out = img.as_mut_slice();
    for y in 0..h {
        let y_up = y.saturating_sub(1);
        let y_dn = (y + 1).min(h - 1);
        let above = &b[y_up * row_n..(y_up + 1) * row_n];
        let cur = &b[y * row_n..(y + 1) * row_n];
        let below = &b[y_dn * row_n..(y_dn + 1) * row_n];
        let dst = &mut out[y * row_n..(y + 1) * row_n];
        for i in 0..row_n {
            dst[i] = from_q14(dn_tap3_q14(above[i], cur[i], below[i]) as i32);
        }
    }
    scratch.pool.put_plane_i16(a);
    scratch.pool.put_plane_i16(b);
}

#[inline(always)]
fn dn_tap3_q14(a: i16, b: i16, c: i16) -> i16 {
    rdiv4(a as i32 + 2 * b as i32 + c as i32) as i16
}

// ---------------------------------------------------------------------
// Elementwise stages (color map, gamut map, tone map, fused quantize)
// ---------------------------------------------------------------------

/// Color-correction matrix (inverse sensor crosstalk) applied in place.
fn color_map_in_place(img: &mut RgbImage) {
    let ccm = ccm();
    for px in img.as_mut_slice().chunks_exact_mut(3) {
        let v = [px[0], px[1], px[2]];
        for (c, row) in ccm.iter().enumerate() {
            px[c] = row[0] * v[0] + row[1] * v[1] + row[2] * v[2];
        }
    }
}

/// Soft-knee threshold of the gamut map.
const GM_KNEE: f32 = 0.9;

/// The gamut map of one value (shared by every gamut-map kernel).
#[inline(always)]
fn gamut_map_one(v: f32) -> f32 {
    let x = v.max(0.0);
    if x <= GM_KNEE {
        x
    } else {
        // Asymptotic approach to 1.0 above the knee.
        GM_KNEE + (1.0 - GM_KNEE) * (1.0 - (-(x - GM_KNEE) / (1.0 - GM_KNEE)).exp())
    }
}

/// Soft-knee gamut compression applied in place (scalar reference).
fn gamut_map_in_place(img: &mut RgbImage) {
    for v in img.as_mut_slice() {
        *v = gamut_map_one(*v);
    }
}

/// Masked chunk kernel of the gamut map: a 16-lane chunk whose maximum
/// stays at or below the knee (the overwhelmingly common case on road
/// scenes) takes the vectorized identity path `x.max(0.0)`; only
/// knee-crossing chunks fall back to the scalar expression per lane.
/// In-gamut values are written as `v.max(0.0)` on both paths, so the
/// output is bit-identical to [`gamut_map_in_place`].
fn gamut_map_lanes(img: &mut RgbImage) {
    const LANE: usize = 16;
    let data = img.as_mut_slice();
    let mut chunks = data.chunks_exact_mut(LANE);
    for chunk in &mut chunks {
        let mut m = [0.0f32; LANE];
        for (d, &s) in m.iter_mut().zip(chunk.iter()) {
            *d = s.max(0.0);
        }
        let mut hi = 0.0f32;
        for &v in &m {
            hi = hi.max(v);
        }
        if hi <= GM_KNEE {
            chunk.copy_from_slice(&m);
        } else {
            for v in chunk.iter_mut() {
                *v = gamut_map_one(*v);
            }
        }
    }
    for v in chunks.into_remainder() {
        *v = gamut_map_one(*v);
    }
}

/// The tone map of one value (shared by the scalar kernel and the
/// fused-quantizer table builder).
#[inline(always)]
fn tone_map_one(v: f32) -> f32 {
    v.max(0.0).powf(1.0 / 2.2)
}

/// sRGB-like gamma encoding (γ = 1/2.2) applied in place.
fn tone_map_in_place(img: &mut RgbImage) {
    for v in img.as_mut_slice() {
        *v = tone_map_one(*v);
    }
}

/// Bit pattern of +∞ — the top of the non-negative f32 bit space the
/// threshold bisection searches (for non-negative floats, bit order is
/// numeric order).
const F32_INF_BITS: u32 = 0x7F80_0000;

/// Probe window of the fused quantize search: after the prefix lookup
/// narrows the code range, at most `QUANT_WINDOW − 1` codes remain and
/// four dependent probes resolve them. Sufficient for any monotone
/// stage with slope ≤ ~1.8 on [0, 1] (a 13-bit prefix bucket spans
/// 2^−5 of its octave, so the quantized output moves by at most
/// `255·slope/32` codes per bucket); the table builder asserts the
/// actual bound.
const QUANT_WINDOW: usize = 16;

/// Bits of `f32::to_bits` used for the prefix lookup: sign-masked
/// exponent plus the top 5 mantissa bits.
const QUANT_PREFIX_SHIFT: u32 = 18;

/// Entries in the prefix LUT (covers every non-negative finite f32 and
/// +∞: `0x7F80_0000 >> 18` rounded up).
const QUANT_LUT_LEN: usize = (F32_INF_BITS >> QUANT_PREFIX_SHIFT) as usize + 1;

/// Fused stage+quantize lookup structure for one monotone stage.
///
/// `thresholds[k]` holds the smallest non-negative f32 (as bits) whose
/// quantized stage output `round(clamp(stage(x), 0, 1)·255)` exceeds
/// code `k` (so a value's code is the number of thresholds ≤ its bits —
/// for non-negative floats, bit order is numeric order). Unreached
/// codes and the window padding keep the `u32::MAX` sentinel.
/// `prefix_lo[p]` pre-resolves the code of the smallest float with
/// 13-bit prefix `p`, narrowing the per-pixel search to at most four
/// probes; `values[c]` caches `c / 255.0`, the exact output the scalar
/// `quantize` pass produces.
struct QuantTable {
    thresholds: [u32; OUTPUT_LEVELS as usize + QUANT_WINDOW],
    prefix_lo: Box<[u8; QUANT_LUT_LEN]>,
    values: [f32; OUTPUT_LEVELS as usize],
}

/// Builds the fused stage+quantize table for a monotone nondecreasing
/// stage function. Each threshold is found by bisection over the f32
/// bit space against the *actual* composed scalar expression, so the
/// fused kernel is exact by construction — not within a tolerance, but
/// bit-for-bit.
///
/// # Panics
///
/// Panics if the stage is too steep for the probe window (no ISP stage
/// is; the assert guards future stages).
fn quantize_table(stage: impl Fn(f32) -> f32) -> QuantTable {
    let q = (OUTPUT_LEVELS - 1) as f32;
    let code =
        |bits: u32| -> u32 { (stage(f32::from_bits(bits)).clamp(0.0, 1.0) * q).round() as u32 };
    let mut t = [u32::MAX; OUTPUT_LEVELS as usize + QUANT_WINDOW];
    let mut floor = 0u32; // highest bits known to map below the next code
    for k in 0..(OUTPUT_LEVELS - 1) {
        if code(F32_INF_BITS) < k + 1 {
            break; // the stage saturates below this code; sentinels stay
        }
        let mut lo = floor; // code(lo) ≤ k
        let mut hi = F32_INF_BITS; // code(hi) ≥ k + 1
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if code(mid) >= k + 1 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        t[k as usize] = hi;
        floor = lo;
    }
    let mut prefix_lo = Box::new([0u8; QUANT_LUT_LEN]);
    let mut c = 0usize; // running count of thresholds ≤ the prefix floor
    for (p, slot) in prefix_lo.iter_mut().enumerate() {
        let bucket_floor = (p as u32) << QUANT_PREFIX_SHIFT;
        while c < OUTPUT_LEVELS as usize - 1 && t[c] <= bucket_floor {
            c += 1;
        }
        *slot = c as u8;
        // The windowed search covers codes [c, c + WINDOW); every value
        // in this bucket must land there.
        let bucket_ceil = bucket_floor | ((1 << QUANT_PREFIX_SHIFT) - 1);
        let top = code(bucket_ceil.min(F32_INF_BITS)) as usize;
        assert!(top < c + QUANT_WINDOW, "stage too steep for the quantize probe window");
    }
    let mut values = [0.0f32; OUTPUT_LEVELS as usize];
    for (k, v) in values.iter_mut().enumerate() {
        *v = k as f32 / q;
    }
    QuantTable { thresholds: t, prefix_lo, values }
}

fn tm_quant_thresholds() -> &'static QuantTable {
    static TABLE: OnceLock<QuantTable> = OnceLock::new();
    TABLE.get_or_init(|| quantize_table(tone_map_one))
}

/// Gamut-map table — kept (test-only) to prove the table machinery is
/// exact for *any* monotone stage, though the production lanes path no
/// longer fuses a trailing gamut map (for below-knee pixels the direct
/// `max` + quantize is cheaper than the table walk).
#[cfg(test)]
fn gm_quant_thresholds() -> &'static QuantTable {
    static TABLE: OnceLock<QuantTable> = OnceLock::new();
    TABLE.get_or_init(|| quantize_table(gamut_map_one))
}

/// Fused trailing-stage + quantize kernel: maps every value through its
/// stage's precomputed [`QuantTable`] — one prefix load plus four
/// branchless probes per subpixel, replacing one transcendental plus
/// one quantize pass. `v.max(0.0)` mirrors the stage functions' own
/// clamp (it also normalizes NaN to 0 exactly like the scalar path);
/// the sign-bit mask maps −0.0 onto +0.0's bit pattern so the integer
/// compare stays order-preserving.
fn fused_quantize_in_place(img: &mut RgbImage, qt: &QuantTable) {
    let t = &qt.thresholds;
    for v in img.as_mut_slice() {
        let mb = v.max(0.0).to_bits() & 0x7FFF_FFFF;
        let mut c = qt.prefix_lo[(mb >> QUANT_PREFIX_SHIFT) as usize] as usize;
        c += ((t[c + 7] <= mb) as usize) << 3;
        c += ((t[c + 3] <= mb) as usize) << 2;
        c += ((t[c + 1] <= mb) as usize) << 1;
        c += (t[c] <= mb) as usize;
        *v = qt.values[c];
    }
}

/// The 3×3 color-correction matrix (inverse of
/// [`crate::sensor::CROSSTALK`]).
pub fn ccm() -> [[f32; 3]; 3] {
    invert3(crate::sensor::CROSSTALK)
}

fn invert3(m: [[f32; 3]; 3]) -> [[f32; 3]; 3] {
    let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    assert!(det.abs() > 1e-9, "crosstalk matrix must be invertible");
    let inv_det = 1.0 / det;
    let mut inv = [[0.0f32; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            // Cofactor expansion, transposed.
            let r0 = (j + 1) % 3;
            let r1 = (j + 2) % 3;
            let c0 = (i + 1) % 3;
            let c1 = (i + 2) % 3;
            inv[i][j] = (m[r0][c0] * m[r1][c1] - m[r0][c1] * m[r1][c0]) * inv_det;
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor::{Sensor, SensorConfig};

    fn noiseless_sensor() -> Sensor {
        Sensor::new(SensorConfig { read_noise: 0.0, shot_noise: 0.0, gain: 1.0 }, 0)
    }

    /// Demosaic through the supported in-place entry point.
    fn dm(raw: &RawImage) -> RgbImage {
        let mut out = RgbImage::new(raw.width(), raw.height());
        demosaic_into(raw, &mut Scratch::new(), &mut out);
        out
    }

    #[test]
    fn table2_stage_sets() {
        use IspStage::*;
        assert_eq!(IspConfig::S0.stages(), &[Demosaic, Denoise, ColorMap, GamutMap, ToneMap]);
        assert_eq!(IspConfig::S5.stages(), &[Demosaic, Denoise]);
        assert_eq!(IspConfig::S8.stages(), &[Demosaic, ToneMap]);
        for cfg in IspConfig::ALL {
            assert!(cfg.has_stage(Demosaic), "{cfg} must demosaic");
        }
    }

    #[test]
    fn demosaic_flat_field_is_flat() {
        let mut s = noiseless_sensor();
        let scene = RgbImage::filled(16, 16, [0.5, 0.5, 0.5]);
        let raw = s.capture(&scene, 1.0);
        let rgb = dm(&raw);
        // A flat gray scene through the crosstalk keeps each channel flat.
        let center = rgb.get(8, 8);
        for y in 2..14 {
            for x in 2..14 {
                let px = rgb.get(x, y);
                for c in 0..3 {
                    assert!((px[c] - center[c]).abs() < 1e-3);
                }
            }
        }
    }

    #[test]
    fn demosaic_interior_matches_border_sampler() {
        // The interior fast path (phase-specialized neighbor tables) must
        // agree bit-exactly with the generic neighbor walk everywhere.
        let mut s = Sensor::new(SensorConfig::default(), 13);
        let scene = RgbImage::filled(32, 16, [0.4, 0.5, 0.3]);
        let raw = s.capture(&scene, 1.0);
        let rgb = dm(&raw);
        for y in 0..raw.height() {
            for x in 0..raw.width() {
                let expect = [
                    dm_border_sample(&raw, x as i64, y as i64, BayerChannel::Red),
                    dm_border_sample(&raw, x as i64, y as i64, BayerChannel::GreenR),
                    dm_border_sample(&raw, x as i64, y as i64, BayerChannel::Blue),
                ];
                assert_eq!(rgb.get(x, y), expect, "pixel ({x}, {y})");
            }
        }
    }

    #[test]
    fn lane_demosaic_is_bit_identical_to_scalar() {
        let mut s = Sensor::new(SensorConfig::default(), 17);
        for (w, h) in [(4, 4), (6, 8), (32, 16), (62, 30)] {
            let scene = RgbImage::filled(w, h, [0.4, 0.5, 0.3]);
            let raw = s.capture(&scene, 1.0);
            let mut scalar = RgbImage::new(w, h);
            let mut lanes = RgbImage::new(w, h);
            demosaic_into_with(&raw, &mut Scratch::new(), &mut scalar, KernelBackend::Scalar);
            demosaic_into_with(&raw, &mut Scratch::new(), &mut lanes, KernelBackend::lanes());
            assert_eq!(scalar, lanes, "{w}x{h}");
        }
    }

    #[test]
    fn q14_demosaic_stays_in_band() {
        let mut s = Sensor::new(SensorConfig::default(), 19);
        let scene = RgbImage::filled(32, 16, [0.4, 0.5, 0.3]);
        let raw = s.capture(&scene, 1.0);
        let mut scalar = RgbImage::new(32, 16);
        let mut q14 = RgbImage::new(32, 16);
        demosaic_into_with(&raw, &mut Scratch::new(), &mut scalar, KernelBackend::Scalar);
        demosaic_into_with(&raw, &mut Scratch::new(), &mut q14, KernelBackend::lanes_fixed());
        for (a, b) in scalar.as_slice().iter().zip(q14.as_slice()) {
            assert!((a - b).abs() <= DM_Q14_EPS, "{a} vs {b}");
        }
    }

    #[test]
    fn exact_backends_are_byte_identical_per_config() {
        let mut s = Sensor::new(SensorConfig::default(), 23);
        let scene = RgbImage::filled(48, 24, [0.35, 0.5, 0.25]);
        let raw = s.capture(&scene, 1.0);
        for cfg in IspConfig::ALL {
            let mut scalar = RgbImage::new(1, 1);
            let mut lanes = RgbImage::new(1, 1);
            IspPipeline::new(cfg).with_backend(KernelBackend::Scalar).process_into(
                &raw,
                &mut Scratch::new(),
                &mut scalar,
            );
            IspPipeline::new(cfg).with_backend(KernelBackend::lanes()).process_into(
                &raw,
                &mut Scratch::new(),
                &mut lanes,
            );
            assert_eq!(scalar, lanes, "{cfg}");
        }
    }

    #[test]
    fn fused_quantize_matches_stage_then_quantize() {
        // Sweep values across the interesting range (negatives, the
        // knee, > 1 saturation, ±0.0) plus a dense grid; the fused
        // kernel must match stage-then-quantize bit-for-bit.
        let mut vals: Vec<f32> = vec![-0.5, -0.0, 0.0, 0.899, 0.9, 0.901, 1.0, 1.3, 5.0, f32::NAN];
        for i in 0..4096 {
            vals.push(i as f32 / 4096.0 * 1.5 - 0.1);
        }
        while vals.len() % 2 != 0 {
            vals.push(0.0);
        }
        let w = vals.len() / 2;
        let mut img = RgbImage::new(w, 2);
        for (d, chunk) in img.as_mut_slice().chunks_exact_mut(1).zip(0..) {
            d[0] = vals[chunk % vals.len()];
        }
        for (one, table) in [
            (tone_map_one as fn(f32) -> f32, tm_quant_thresholds()),
            (gamut_map_one as fn(f32) -> f32, gm_quant_thresholds()),
        ] {
            let mut reference = img.clone();
            for v in reference.as_mut_slice() {
                *v = one(*v);
            }
            reference.quantize(OUTPUT_LEVELS);
            let mut fused = img.clone();
            fused_quantize_in_place(&mut fused, table);
            assert_eq!(reference, fused);
        }
    }

    #[test]
    fn lane_gamut_map_is_bit_identical() {
        // Values straddling the knee in every chunk pattern.
        let mut img = RgbImage::new(20, 3);
        for (i, v) in img.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32 * 0.037) % 1.4 - 0.1;
        }
        let mut scalar = img.clone();
        gamut_map_in_place(&mut scalar);
        gamut_map_lanes(&mut img);
        assert_eq!(scalar, img);
    }

    #[test]
    fn tiled_stages_are_byte_identical_across_thread_counts() {
        let mut s = Sensor::new(SensorConfig::default(), 21);
        let scene = RgbImage::filled(64, 48, [0.3, 0.5, 0.2]);
        let raw = s.capture(&scene, 1.0);
        let reference = IspPipeline::new(IspConfig::S0).process(&raw);
        for threads in [2, 3, 4, 7] {
            let mut scratch = Scratch::with_threads(threads);
            let mut out = RgbImage::new(1, 1);
            IspPipeline::new(IspConfig::S0).process_into(&raw, &mut scratch, &mut out);
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn process_into_reuses_buffers_in_steady_state() {
        let mut s = noiseless_sensor();
        let raw = s.capture(&RgbImage::filled(16, 16, [0.4, 0.4, 0.4]), 1.0);
        let mut scratch = Scratch::new();
        let mut out = RgbImage::new(16, 16);
        let isp = IspPipeline::new(IspConfig::S0);
        for _ in 0..5 {
            isp.process_into(&raw, &mut scratch, &mut out);
        }
        let stats = scratch.pool().stats();
        assert_eq!(stats.allocations, 1, "only the denoise ping-pong buffer is ever fresh");
        assert_eq!(stats.reuses, 4);
    }

    #[test]
    fn color_map_inverts_crosstalk() {
        let mut s = noiseless_sensor();
        let scene = RgbImage::filled(16, 16, [0.8, 0.6, 0.1]); // yellow-ish
        let raw = s.capture(&scene, 1.0);
        let mut rgb = dm(&raw);
        IspStage::ColorMap.apply(&mut Scratch::new(), &mut rgb);
        let px = rgb.get(8, 8);
        assert!((px[0] - 0.8).abs() < 0.05, "R recovered, got {}", px[0]);
        assert!((px[1] - 0.6).abs() < 0.05, "G recovered, got {}", px[1]);
        assert!((px[2] - 0.1).abs() < 0.05, "B recovered, got {}", px[2]);
    }

    #[test]
    fn color_map_restores_yellow_contrast() {
        // Without CM, yellow-vs-gray gray-level contrast is weaker —
        // the effect behind Table III's CM choices for yellow lanes.
        let yellow = RgbImage::filled(16, 16, [0.85, 0.70, 0.15]);
        let gray = RgbImage::filled(16, 16, [0.30, 0.30, 0.30]);
        let contrast = |with_cm: bool| -> f32 {
            let mut sy = noiseless_sensor();
            let mut sg = noiseless_sensor();
            let mut scratch = Scratch::new();
            let mut ry = dm(&sy.capture(&yellow, 1.0));
            let mut rg = dm(&sg.capture(&gray, 1.0));
            if with_cm {
                IspStage::ColorMap.apply(&mut scratch, &mut ry);
                IspStage::ColorMap.apply(&mut scratch, &mut rg);
            }
            ry.to_gray().get(8, 8) - rg.to_gray().get(8, 8)
        };
        assert!(contrast(true) > contrast(false));
    }

    #[test]
    fn denoise_reduces_noise_std() {
        let mut s = Sensor::new(SensorConfig { read_noise: 0.05, shot_noise: 0.0, gain: 1.0 }, 11);
        let scene = RgbImage::filled(64, 64, [0.5, 0.5, 0.5]);
        let raw = s.capture(&scene, 1.0);
        let noisy = dm(&raw);
        let mut smooth = noisy.clone();
        IspStage::Denoise.apply(&mut Scratch::new(), &mut smooth);
        assert!(smooth.to_gray().std_dev() < 0.8 * noisy.to_gray().std_dev());
    }

    #[test]
    fn lane_denoise_is_bit_identical_to_scalar() {
        let mut s = Sensor::new(SensorConfig::default(), 29);
        let raw = s.capture(&RgbImage::filled(34, 18, [0.4, 0.5, 0.3]), 1.0);
        let base = dm(&raw);
        let mut scalar = base.clone();
        let mut lanes = base.clone();
        IspStage::Denoise.apply_with(KernelBackend::Scalar, &mut Scratch::new(), &mut scalar);
        IspStage::Denoise.apply_with(KernelBackend::lanes(), &mut Scratch::new(), &mut lanes);
        assert_eq!(scalar, lanes);
    }

    #[test]
    fn q14_denoise_stays_in_band() {
        let mut s = Sensor::new(SensorConfig::default(), 31);
        let raw = s.capture(&RgbImage::filled(34, 18, [0.4, 0.5, 0.3]), 1.0);
        let base = dm(&raw);
        let mut scalar = base.clone();
        let mut q14 = base.clone();
        IspStage::Denoise.apply_with(KernelBackend::Scalar, &mut Scratch::new(), &mut scalar);
        IspStage::Denoise.apply_with(KernelBackend::lanes_fixed(), &mut Scratch::new(), &mut q14);
        for (a, b) in scalar.as_slice().iter().zip(q14.as_slice()) {
            assert!((a - b).abs() <= DN_Q14_EPS, "{a} vs {b}");
        }
    }

    #[test]
    fn tone_map_brightens_shadows() {
        let mut img = RgbImage::filled(2, 2, [0.1, 0.1, 0.1]);
        IspStage::ToneMap.apply(&mut Scratch::new(), &mut img);
        assert!(img.get(0, 0)[0] > 0.3);
    }

    #[test]
    fn gamut_map_soft_clips() {
        let mut img = RgbImage::filled(1, 1, [1.5, 0.5, -0.2]);
        IspStage::GamutMap.apply(&mut Scratch::new(), &mut img);
        let px = img.get(0, 0);
        assert!(px[0] <= 1.0 && px[0] > 0.9);
        assert!((px[1] - 0.5).abs() < 1e-6, "in-gamut values unchanged");
        assert_eq!(px[2], 0.0);
    }

    #[test]
    fn demosaic_stage_apply_is_structural_noop() {
        let mut img = RgbImage::filled(4, 4, [0.3, 0.6, 0.9]);
        let before = img.clone();
        IspStage::Demosaic.apply(&mut Scratch::new(), &mut img);
        assert_eq!(img, before);
    }

    #[test]
    fn pipeline_output_is_quantized() {
        let mut s = noiseless_sensor();
        let raw = s.capture(&RgbImage::filled(8, 8, [0.3, 0.3, 0.3]), 1.0);
        let out = IspPipeline::new(IspConfig::S0).process(&raw);
        for &v in out.as_slice() {
            let steps = v * (OUTPUT_LEVELS - 1) as f32;
            assert!((steps - steps.round()).abs() < 1e-3);
        }
    }

    #[test]
    fn tone_map_preserves_shadow_detail_after_quantization() {
        // In a dark scene, S4 (no TM) collapses nearby shadow values onto
        // the same 8-bit code, while S3 (with TM) keeps them distinct.
        let mut s = noiseless_sensor();
        let a = s.capture(&RgbImage::filled(8, 8, [0.26, 0.26, 0.26]), 0.15);
        let b = s.capture(&RgbImage::filled(8, 8, [0.30, 0.30, 0.30]), 0.15);
        let with_tm = IspPipeline::new(IspConfig::S3);
        let without_tm = IspPipeline::new(IspConfig::S4);
        let d_tm =
            (with_tm.process(&a).to_gray().mean() - with_tm.process(&b).to_gray().mean()).abs();
        let d_no = (without_tm.process(&a).to_gray().mean()
            - without_tm.process(&b).to_gray().mean())
        .abs();
        assert!(
            d_tm >= d_no,
            "tone map must preserve at least as much shadow separation ({d_tm} vs {d_no})"
        );
    }

    #[test]
    fn invert3_roundtrip() {
        let m = crate::sensor::CROSSTALK;
        let inv = invert3(m);
        for i in 0..3 {
            for j in 0..3 {
                let mut v = 0.0;
                for k in 0..3 {
                    v += inv[i][k] * m[k][j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn config_display_names() {
        assert_eq!(IspConfig::S0.to_string(), "S0");
        assert_eq!(IspConfig::ALL.len(), 9);
    }
}
