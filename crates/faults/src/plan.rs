//! The seed-driven fault-plan DSL.
//!
//! A [`FaultPlan`] is a named list of [`FaultWindow`]s — "fault *kind*
//! over cycles `[start, start+len)`" — plus the seed that parameterizes
//! any stochastic corruption inside those windows. Plans are built
//! explicitly through the builder methods (`drop_burst`, `hot_pixels`,
//! …) or generated wholesale from a seed with [`FaultPlan::random`];
//! either way the resulting schedule is a pure value: serializable,
//! comparable, and replayable bit-for-bit.

use crate::inject::BayerFaultKind;
use lkas_scene::situation::{LaneColor, LaneForm, RoadLayout, SceneKind, SituationFeatures};
use lkas_vehicle::ActuatorFault;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Schema tag written into serialized fault plans and campaign reports.
pub const FAULT_PLAN_SCHEMA: &str = "lkas-fault-plan-v1";

/// How a classifier-misprediction fault picks the wrong situation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Misprediction {
    /// Derive a wrong-but-plausible situation from the ground truth at
    /// injection time (via `lkas_nn::classifiers::confuse_situation`).
    Confuse,
    /// Force this exact situation.
    Force(SituationFeatures),
}

/// An injectable steering-actuation failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ActuationFault {
    /// The wheel freezes at its current angle.
    Stuck,
    /// The actuator responds at `response_scale` of its nominal rate.
    Lagged {
        /// Remaining fraction of nominal responsiveness ∈ (0, 1].
        response_scale: f64,
    },
}

impl ActuationFault {
    /// The `lkas-vehicle` actuator failure this plan entry maps to.
    pub fn to_actuator(self) -> ActuatorFault {
        match self {
            ActuationFault::Stuck => ActuatorFault::Stuck,
            ActuationFault::Lagged { response_scale } => ActuatorFault::Sluggish { response_scale },
        }
    }
}

/// One injectable fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The camera frame never arrives this cycle.
    FrameDrop,
    /// The RAW frame is corrupted before the ISP.
    Bayer(BayerFaultKind),
    /// The situation estimate is overridden with a wrong value.
    Misclassify(Misprediction),
    /// Actuation lands `extra_ms` after the designed delay `τ`.
    PerceptionTimeout {
        /// Additional sensor-to-actuator delay (ms).
        extra_ms: f64,
    },
    /// The steering actuator misbehaves.
    Actuation(ActuationFault),
}

/// A fault active over a contiguous cycle window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First affected control cycle (frame index).
    pub start_cycle: u64,
    /// Number of affected cycles.
    pub cycles: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// `true` if `cycle` falls inside this window.
    pub fn contains(&self, cycle: u64) -> bool {
        cycle >= self.start_cycle && cycle < self.start_cycle.saturating_add(self.cycles)
    }
}

/// Everything that is wrong in one control cycle — the aggregated view
/// the HiL simulator consumes. Later windows win where two windows of
/// the same class overlap; timeout delays accumulate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CycleFaults {
    /// The camera frame is dropped.
    pub drop_frame: bool,
    /// RAW-domain corruption to apply.
    pub bayer: Option<BayerFaultKind>,
    /// Situation-estimate override.
    pub mispredict: Option<Misprediction>,
    /// Extra actuation delay beyond the designed `τ` (ms).
    pub extra_delay_ms: f64,
    /// Actuator failure in effect.
    pub actuation: Option<ActuationFault>,
}

impl CycleFaults {
    /// `true` if any fault is active this cycle.
    pub fn any(&self) -> bool {
        self.drop_frame
            || self.bayer.is_some()
            || self.mispredict.is_some()
            || self.extra_delay_ms > 0.0
            || self.actuation.is_some()
    }

    /// Stable labels of the active faults, for trace instant events.
    /// Order matches the field order, so traces of the same plan are
    /// reproducible.
    pub fn trace_labels(&self) -> Vec<&'static str> {
        let mut labels = Vec::new();
        if self.drop_frame {
            labels.push("fault:frame_drop");
        }
        if self.bayer.is_some() {
            labels.push("fault:bayer");
        }
        if self.mispredict.is_some() {
            labels.push("fault:mispredict");
        }
        if self.extra_delay_ms > 0.0 {
            labels.push("fault:deadline_overrun");
        }
        if self.actuation.is_some() {
            labels.push("fault:actuation");
        }
        labels
    }
}

/// A deterministic fault campaign over one HiL run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Human-readable campaign name (used in robustness reports).
    pub name: String,
    /// Seed for the stochastic content of the windows (hot-pixel
    /// placement, random plan generation).
    pub seed: u64,
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty (fault-free) plan — useful as an explicit baseline.
    pub fn named(name: impl Into<String>, seed: u64) -> Self {
        FaultPlan { name: name.into(), seed, windows: Vec::new() }
    }

    /// Adds an arbitrary fault window (the generic DSL entry point).
    pub fn with_window(mut self, start_cycle: u64, cycles: u64, kind: FaultKind) -> Self {
        self.windows.push(FaultWindow { start_cycle, cycles, kind });
        self
    }

    /// Drops every camera frame in `[start, start+len)`.
    pub fn drop_burst(self, start_cycle: u64, cycles: u64) -> Self {
        self.with_window(start_cycle, cycles, FaultKind::FrameDrop)
    }

    /// Saturates a `density` fraction of photosites per affected frame.
    pub fn hot_pixels(self, start_cycle: u64, cycles: u64, density: f32) -> Self {
        self.with_window(
            start_cycle,
            cycles,
            FaultKind::Bayer(BayerFaultKind::HotPixels { density }),
        )
    }

    /// Scales every `period`-th RAW row by `gain`.
    pub fn row_banding(self, start_cycle: u64, cycles: u64, period: usize, gain: f32) -> Self {
        self.with_window(
            start_cycle,
            cycles,
            FaultKind::Bayer(BayerFaultKind::RowBanding { period, gain }),
        )
    }

    /// Multiplies the RAW frame exposure by `gain`.
    pub fn exposure_glitch(self, start_cycle: u64, cycles: u64, gain: f32) -> Self {
        self.with_window(
            start_cycle,
            cycles,
            FaultKind::Bayer(BayerFaultKind::ExposureGlitch { gain }),
        )
    }

    /// Forces a wrong situation estimate (derived from the truth at
    /// injection time) for the affected cycles.
    pub fn misclassify(self, start_cycle: u64, cycles: u64) -> Self {
        self.with_window(start_cycle, cycles, FaultKind::Misclassify(Misprediction::Confuse))
    }

    /// Forces this exact situation estimate for the affected cycles.
    pub fn force_situation(
        self,
        start_cycle: u64,
        cycles: u64,
        situation: SituationFeatures,
    ) -> Self {
        self.with_window(
            start_cycle,
            cycles,
            FaultKind::Misclassify(Misprediction::Force(situation)),
        )
    }

    /// Inflates the sensor-to-actuator delay by `extra_ms` past the
    /// designed `τ` for the affected cycles.
    pub fn deadline_overrun(self, start_cycle: u64, cycles: u64, extra_ms: f64) -> Self {
        self.with_window(start_cycle, cycles, FaultKind::PerceptionTimeout { extra_ms })
    }

    /// Freezes the steering actuator for the affected cycles.
    pub fn actuation_stuck(self, start_cycle: u64, cycles: u64) -> Self {
        self.with_window(start_cycle, cycles, FaultKind::Actuation(ActuationFault::Stuck))
    }

    /// Slows the steering actuator to `response_scale` of nominal for
    /// the affected cycles.
    pub fn actuation_lagged(self, start_cycle: u64, cycles: u64, response_scale: f64) -> Self {
        self.with_window(
            start_cycle,
            cycles,
            FaultKind::Actuation(ActuationFault::Lagged { response_scale }),
        )
    }

    /// Generates a random mixed campaign: `bursts` fault windows of all
    /// five classes scattered over `[0, horizon_cycles)`. A pure
    /// function of `(name, seed, horizon_cycles, bursts)` — the same
    /// arguments always produce the identical schedule.
    pub fn random(name: impl Into<String>, seed: u64, horizon_cycles: u64, bursts: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_17);
        let mut plan = FaultPlan::named(name, seed);
        for _ in 0..bursts {
            let start = rng.gen_range(0..horizon_cycles.max(1));
            let cycles = rng.gen_range(3..40u64);
            let kind = match rng.gen_range(0..7u32) {
                0 => FaultKind::FrameDrop,
                1 => FaultKind::Bayer(BayerFaultKind::HotPixels {
                    density: rng.gen_range(0.005f32..0.08),
                }),
                2 => FaultKind::Bayer(BayerFaultKind::RowBanding {
                    period: rng.gen_range(2..8usize),
                    gain: rng.gen_range(0.1f32..0.6),
                }),
                3 => FaultKind::Bayer(BayerFaultKind::ExposureGlitch {
                    gain: if rng.gen_bool(0.5) {
                        rng.gen_range(1.8f32..4.0)
                    } else {
                        rng.gen_range(0.15f32..0.5)
                    },
                }),
                4 => FaultKind::Misclassify(Misprediction::Confuse),
                5 => FaultKind::PerceptionTimeout { extra_ms: rng.gen_range(10.0f64..40.0) },
                _ => {
                    if rng.gen_bool(0.5) {
                        FaultKind::Actuation(ActuationFault::Stuck)
                    } else {
                        FaultKind::Actuation(ActuationFault::Lagged {
                            response_scale: rng.gen_range(0.1f64..0.5),
                        })
                    }
                }
            };
            plan = plan.with_window(start, cycles, kind);
        }
        plan
    }

    /// The scheduled windows, in insertion order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// `true` if the plan schedules no fault at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// One past the last faulted cycle (0 for an empty plan).
    pub fn horizon(&self) -> u64 {
        self.windows.iter().map(|w| w.start_cycle.saturating_add(w.cycles)).max().unwrap_or(0)
    }

    /// Everything that goes wrong in `cycle`, aggregated across windows.
    pub fn faults_at(&self, cycle: u64) -> CycleFaults {
        let mut out = CycleFaults::default();
        for w in &self.windows {
            if !w.contains(cycle) {
                continue;
            }
            match w.kind {
                FaultKind::FrameDrop => out.drop_frame = true,
                FaultKind::Bayer(kind) => out.bayer = Some(kind),
                FaultKind::Misclassify(mp) => out.mispredict = Some(mp),
                FaultKind::PerceptionTimeout { extra_ms } => out.extra_delay_ms += extra_ms,
                FaultKind::Actuation(fault) => out.actuation = Some(fault),
            }
        }
        out
    }

    /// Serializes the plan (with its schema tag) as pretty JSON.
    ///
    /// # Panics
    ///
    /// Serialization of a plan cannot fail; panics only on an internal
    /// serde error.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&TaggedPlan {
            schema: FAULT_PLAN_SCHEMA.to_string(),
            name: self.name.clone(),
            seed: self.seed,
            windows: self.windows.clone(),
        })
        .expect("fault plan serializes")
    }

    /// Parses a plan from [`FaultPlan::to_json`] output, rejecting
    /// unknown schema tags.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let tagged: TaggedPlan = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if tagged.schema != FAULT_PLAN_SCHEMA {
            return Err(format!("unsupported fault-plan schema: {}", tagged.schema));
        }
        Ok(FaultPlan { name: tagged.name, seed: tagged.seed, windows: tagged.windows })
    }
}

/// On-disk form of a fault plan: the plan fields plus the schema tag.
#[derive(Serialize, Deserialize)]
struct TaggedPlan {
    schema: String,
    name: String,
    seed: u64,
    windows: Vec<FaultWindow>,
}

/// A deliberately-wrong situation for [`Misprediction::Force`] plans:
/// the benign boot situation (straight, white continuous, day) — forcing
/// it on a turn reproduces the paper's Case 1 failure mechanism.
pub fn benign_situation() -> SituationFeatures {
    SituationFeatures::new(
        LaneColor::White,
        LaneForm::Continuous,
        RoadLayout::Straight,
        SceneKind::Day,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_aggregate_per_cycle() {
        let plan = FaultPlan::named("mix", 1)
            .drop_burst(10, 5)
            .hot_pixels(12, 10, 0.02)
            .deadline_overrun(12, 2, 15.0)
            .deadline_overrun(13, 2, 5.0)
            .actuation_stuck(40, 3);
        assert!(!plan.faults_at(9).any());
        let c10 = plan.faults_at(10);
        assert!(c10.drop_frame && c10.bayer.is_none());
        let c12 = plan.faults_at(12);
        assert!(c12.drop_frame);
        assert_eq!(c12.bayer, Some(BayerFaultKind::HotPixels { density: 0.02 }));
        assert_eq!(c12.extra_delay_ms, 15.0);
        let c13 = plan.faults_at(13);
        assert_eq!(c13.extra_delay_ms, 20.0, "overlapping timeouts accumulate");
        assert_eq!(plan.faults_at(40).actuation, Some(ActuationFault::Stuck));
        // Trace labels track the active faults in field order.
        assert!(plan.faults_at(9).trace_labels().is_empty());
        assert_eq!(
            c12.trace_labels(),
            vec!["fault:frame_drop", "fault:bayer", "fault:deadline_overrun"]
        );
        assert_eq!(plan.faults_at(40).trace_labels(), vec!["fault:actuation"]);
        assert!(!plan.faults_at(43).any());
        assert_eq!(plan.horizon(), 43);
    }

    #[test]
    fn empty_plan_is_fault_free() {
        let plan = FaultPlan::named("nominal", 7);
        assert!(plan.is_empty());
        assert_eq!(plan.horizon(), 0);
        for cycle in [0u64, 100, u64::MAX] {
            assert!(!plan.faults_at(cycle).any());
        }
    }

    #[test]
    fn random_plans_replay_identically() {
        let a = FaultPlan::random("r", 7, 1000, 12);
        let b = FaultPlan::random("r", 7, 1000, 12);
        assert_eq!(a, b);
        assert_eq!(a.windows().len(), 12);
        let c = FaultPlan::random("r", 8, 1000, 12);
        assert_ne!(a, c, "different seeds give different campaigns");
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan =
            FaultPlan::random("roundtrip", 3, 500, 6).force_situation(490, 10, benign_situation());
        let json = plan.to_json();
        assert!(json.contains(FAULT_PLAN_SCHEMA));
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
        let bad = json.replace(FAULT_PLAN_SCHEMA, "lkas-fault-plan-v999");
        assert!(FaultPlan::from_json(&bad).is_err());
    }

    #[test]
    fn actuation_mapping_reaches_vehicle_types() {
        assert_eq!(ActuationFault::Stuck.to_actuator(), ActuatorFault::Stuck);
        assert_eq!(
            ActuationFault::Lagged { response_scale: 0.3 }.to_actuator(),
            ActuatorFault::Sluggish { response_scale: 0.3 }
        );
    }

    #[test]
    fn window_bounds_are_inclusive_exclusive() {
        let w = FaultWindow { start_cycle: 5, cycles: 3, kind: FaultKind::FrameDrop };
        assert!(!w.contains(4));
        assert!(w.contains(5) && w.contains(7));
        assert!(!w.contains(8));
    }
}
