//! Image-quality metrics quantifying ISP approximation error.
//!
//! The paper's predecessor works ([8], [9]) reason about the trade-off
//! between ISP approximation error and control quality; these metrics let
//! the benches report that approximation error alongside QoC.

use crate::image::{GrayImage, RgbImage};

/// Mean squared error between two RGB frames.
///
/// # Panics
///
/// Panics if the frames have different dimensions.
pub fn mse_rgb(a: &RgbImage, b: &RgbImage) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "mse_rgb requires equal dimensions"
    );
    let n = a.as_slice().len() as f64;
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum::<f64>()
        / n
}

/// Mean squared error between two grayscale frames.
///
/// # Panics
///
/// Panics if the frames have different dimensions.
pub fn mse_gray(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "mse_gray requires equal dimensions"
    );
    let n = a.as_slice().len() as f64;
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum::<f64>()
        / n
}

/// Peak signal-to-noise ratio in dB for unit-range images.
///
/// Returns `f64::INFINITY` for identical frames.
///
/// # Panics
///
/// Panics if the frames have different dimensions.
///
/// # Example
///
/// ```
/// use lkas_imaging::image::RgbImage;
/// use lkas_imaging::metrics::psnr_rgb;
///
/// let a = RgbImage::filled(4, 4, [0.5, 0.5, 0.5]);
/// let b = RgbImage::filled(4, 4, [0.6, 0.5, 0.5]);
/// assert!(psnr_rgb(&a, &b) > 20.0);
/// assert!(psnr_rgb(&a, &a).is_infinite());
/// ```
pub fn psnr_rgb(a: &RgbImage, b: &RgbImage) -> f64 {
    let mse = mse_rgb(a, b);
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (1.0 / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_frames_have_zero_mse() {
        let a = RgbImage::filled(4, 4, [0.3, 0.6, 0.9]);
        assert_eq!(mse_rgb(&a, &a), 0.0);
        assert!(psnr_rgb(&a, &a).is_infinite());
    }

    #[test]
    fn known_mse() {
        let a = RgbImage::filled(2, 2, [0.0, 0.0, 0.0]);
        let b = RgbImage::filled(2, 2, [0.5, 0.5, 0.5]);
        assert!((mse_rgb(&a, &b) - 0.25).abs() < 1e-9);
        // PSNR = 10 log10(1/0.25) ≈ 6.0206 dB
        assert!((psnr_rgb(&a, &b) - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn gray_mse() {
        let mut a = GrayImage::new(2, 1);
        let mut b = GrayImage::new(2, 1);
        a.set(0, 0, 1.0);
        b.set(1, 0, 1.0);
        assert!((mse_gray(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = RgbImage::new(2, 2);
        let b = RgbImage::new(4, 2);
        let _ = mse_rgb(&a, &b);
    }
}
