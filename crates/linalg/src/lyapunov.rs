//! Discrete Lyapunov equation solver.
//!
//! Solves `Aᵀ P A − P + Q = 0` for `P`, the workhorse behind the
//! common-quadratic-Lyapunov-function (CQLF) search used to certify
//! stability of the paper's situation-switched controller
//! (Sec. III-D, refs. [15], [16]).

use crate::{lu, LinalgError, Mat, Result};

/// Solves the discrete Lyapunov equation `Aᵀ P A − P + Q = 0` exactly via
/// the Kronecker-product linearization `(I − Aᵀ⊗Aᵀ) vec(P) = vec(Q)`.
///
/// For the small state dimensions in this workspace (n ≤ 12 ⇒ a 144×144
/// linear solve) this is fast and exact.
///
/// # Errors
///
/// * [`LinalgError::InvalidInput`] if `a`/`q` are not square or shapes
///   disagree.
/// * [`LinalgError::Singular`] if `A` has an eigenvalue pair with
///   `λᵢ λⱼ = 1` (no unique solution, e.g. `A` not Schur stable with a
///   unit-modulus eigenvalue).
///
/// # Example
///
/// ```
/// use lkas_linalg::{Mat, lyapunov::solve_discrete_lyapunov};
///
/// let a = Mat::diag(&[0.5, 0.8]);
/// let q = Mat::identity(2);
/// let p = solve_discrete_lyapunov(&a, &q).unwrap();
/// // Verify: AᵀPA - P + Q = 0.
/// let res = a.transpose().matmul(&p).unwrap().matmul(&a).unwrap()
///     .sub_mat(&p).unwrap().add_mat(&q).unwrap();
/// assert!(res.max_abs() < 1e-10);
/// ```
pub fn solve_discrete_lyapunov(a: &Mat, q: &Mat) -> Result<Mat> {
    if !a.is_square() || !q.is_square() || a.rows() != q.rows() {
        return Err(LinalgError::InvalidInput(
            "solve_discrete_lyapunov requires square A and Q of equal order",
        ));
    }
    let n = a.rows();
    let at = a.transpose();
    // M = I_{n²} − Aᵀ⊗Aᵀ  acting on vec(P) with column-major vec; we use
    // row-major "vec" consistently on both sides so the identity still
    // holds: vec_rm(Aᵀ P A) = (Aᵀ ⊗ Aᵀ)_rm vec_rm(P) with
    // (X ⊗ Y)_rm[(i*n+j),(k*n+l)] = X[i,k] · Y[j,l] for vec_rm(P)[k*n+l] =
    // P[k,l], because (AᵀPA)[i,j] = Σ_{k,l} Aᵀ[i,k] P[k,l] A[l,j]
    //                            = Σ Aᵀ[i,k] · Aᵀ[j,l]ᵀ…
    // Note A[l,j] = Aᵀ[j,l], giving exactly X=Aᵀ, Y=Aᵀ.
    let n2 = n * n;
    let mut m = Mat::zeros(n2, n2);
    for i in 0..n {
        for j in 0..n {
            let row = i * n + j;
            for k in 0..n {
                for l in 0..n {
                    let col = k * n + l;
                    let v = at[(i, k)] * at[(j, l)];
                    m[(row, col)] = if row == col { 1.0 - v } else { -v };
                }
            }
        }
    }
    let rhs = Mat::from_vec(n2, 1, q.as_slice().to_vec())?;
    let p_vec = lu::solve(&m, &rhs)?;
    let mut p = Mat::from_vec(n, n, p_vec.as_slice().to_vec())?;
    p.symmetrize();
    Ok(p)
}

/// Residual `Aᵀ P A − P + Q` of a candidate solution (diagnostic helper).
///
/// # Errors
///
/// Returns dimension errors from the underlying matrix products.
pub fn lyapunov_residual(a: &Mat, p: &Mat, q: &Mat) -> Result<Mat> {
    a.transpose().matmul(p)?.matmul(a)?.sub_mat(p)?.add_mat(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig;

    #[test]
    fn solves_diagonal_case() {
        let a = Mat::diag(&[0.9, 0.1]);
        let q = Mat::identity(2);
        let p = solve_discrete_lyapunov(&a, &q).unwrap();
        // Closed form for diagonal: p_ii = q_ii / (1 - a_ii^2).
        assert!((p[(0, 0)] - 1.0 / (1.0 - 0.81)).abs() < 1e-10);
        assert!((p[(1, 1)] - 1.0 / (1.0 - 0.01)).abs() < 1e-10);
    }

    #[test]
    fn residual_is_zero_for_random_stable_system() {
        let a = Mat::from_rows(&[&[0.4, 0.3, 0.0], &[-0.2, 0.5, 0.1], &[0.0, 0.2, -0.3]]);
        assert!(eig::is_schur_stable(&a).unwrap());
        let q = Mat::diag(&[1.0, 2.0, 0.5]);
        let p = solve_discrete_lyapunov(&a, &q).unwrap();
        let res = lyapunov_residual(&a, &p, &q).unwrap();
        assert!(res.max_abs() < 1e-10);
        assert!(p.is_positive_definite(), "P must be PD for stable A, PD Q");
    }

    #[test]
    fn unstable_a_gives_non_pd_solution() {
        let a = Mat::diag(&[1.2, 0.5]);
        let q = Mat::identity(2);
        let p = solve_discrete_lyapunov(&a, &q).unwrap();
        assert!(!p.is_positive_definite());
    }

    #[test]
    fn unit_eigenvalue_is_singular() {
        let a = Mat::diag(&[1.0, 0.5]);
        let q = Mat::identity(2);
        assert!(matches!(solve_discrete_lyapunov(&a, &q), Err(LinalgError::Singular)));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Mat::identity(2).scale(0.5);
        let q = Mat::identity(3);
        assert!(solve_discrete_lyapunov(&a, &q).is_err());
    }
}
