//! Scene-referred renderer: road, markings, sky, illumination.
//!
//! Replaces the Webots camera: given a [`Track`] and the vehicle's Frenet
//! pose (arc position `s`, lateral offset `d`, heading error `ψ`), it
//! produces the linear-RGB irradiance frame a front camera would see.
//! Feed the result to [`lkas_imaging::Sensor::capture`] with
//! `illumination = 1.0` — the renderer already applies the scene's
//! ambient level, tint and head-light falloff per pixel, since those vary
//! across the frame.
//!
//! [`lkas_imaging::Sensor::capture`]: lkas_imaging::sensor::Sensor::capture

use crate::camera::Camera;
use crate::situation::SceneKind;
use crate::track::{Track, DOUBLE_GAP, LANE_WIDTH, MARKING_WIDTH};
use lkas_imaging::image::RgbImage;

/// Linear-RGB albedos of the rendered materials.
pub mod albedo {
    /// Asphalt road surface.
    pub const ROAD: [f32; 3] = [0.16, 0.16, 0.17];
    /// White lane marking.
    pub const WHITE_MARKING: [f32; 3] = [0.85, 0.85, 0.85];
    /// Yellow lane marking.
    pub const YELLOW_MARKING: [f32; 3] = [0.75, 0.55, 0.08];
    /// Grass / off-road.
    pub const GRASS: [f32; 3] = [0.08, 0.13, 0.06];
    /// Sky (day).
    pub const SKY: [f32; 3] = [0.55, 0.68, 0.85];
}

/// Typed failure of the scene-rendering layer.
///
/// Rendering a frame used to be infallible-or-abort: an invalid camera
/// (possible via deserialized campaign configs, which bypass the
/// [`Camera`] constructor checks) would `panic!` deep inside frame
/// allocation and take a whole campaign worker down with it. The
/// fallible entry points ([`SceneRenderer::render_into`],
/// [`Camera::try_new`]) surface this instead, and the HiL loop reports
/// it through its result counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenderError {
    /// The camera model cannot produce a frame: zero-sized, non-positive
    /// or non-finite focal length / mounting height, or pitch at or past
    /// ±90°.
    InvalidCamera(&'static str),
}

impl std::fmt::Display for RenderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenderError::InvalidCamera(reason) => write!(f, "invalid camera: {reason}"),
        }
    }
}

impl std::error::Error for RenderError {}

/// Paved shoulder beyond the markings, in meters.
const SHOULDER: f64 = 0.6;

/// Head-light beam length scale (meters of e-folding).
const HEADLIGHT_FALLOFF: f64 = 15.0;

/// Renders camera frames of a track.
///
/// # Example
///
/// ```
/// use lkas_scene::camera::Camera;
/// use lkas_scene::render::SceneRenderer;
/// use lkas_scene::situation::TABLE3_SITUATIONS;
/// use lkas_scene::track::Track;
///
/// let track = Track::for_situation(&TABLE3_SITUATIONS[0], 500.0);
/// let renderer = SceneRenderer::new(Camera::default_automotive());
/// let frame = renderer.render(&track, 0.0, 0.0, 0.0);
/// assert_eq!((frame.width(), frame.height()), (512, 256));
/// ```
#[derive(Debug, Clone)]
pub struct SceneRenderer {
    camera: Camera,
}

impl SceneRenderer {
    /// Creates a renderer for the given camera.
    pub fn new(camera: Camera) -> Self {
        SceneRenderer { camera }
    }

    /// Borrow the camera model.
    pub fn camera(&self) -> &Camera {
        &self.camera
    }

    /// Renders the scene-referred irradiance frame seen from Frenet pose
    /// `(s, d, psi)`: arc position `s` (m), lateral offset `d` from the
    /// lane center (m, positive left), heading error `psi` (rad, positive
    /// = nose pointing left of the lane tangent).
    ///
    /// Convenience wrapper over [`SceneRenderer::render_into`] that
    /// allocates a fresh frame per call.
    ///
    /// # Panics
    ///
    /// Panics if the camera is invalid (see [`Camera::validate`]); use
    /// `render_into` for the fallible, allocation-free path.
    pub fn render(&self, track: &Track, s: f64, d: f64, psi: f64) -> RgbImage {
        let mut img = RgbImage::new(self.camera.width().max(1), self.camera.height().max(1));
        match self.render_into(track, s, d, psi, &mut img) {
            Ok(()) => img,
            Err(e) => panic!("{e}"),
        }
    }

    /// Renders the frame into a caller-owned buffer (resized as needed) —
    /// the allocation-free render path, and the fallible one: an invalid
    /// camera (e.g. deserialized with zero dimensions) returns a
    /// [`RenderError`] instead of aborting the worker.
    pub fn render_into(
        &self,
        track: &Track,
        s: f64,
        d: f64,
        psi: f64,
        img: &mut RgbImage,
    ) -> Result<(), RenderError> {
        self.camera.validate()?;
        let w = self.camera.width();
        let h = self.camera.height();
        img.reshape(w, h);
        let (sin_psi, cos_psi) = psi.sin_cos();
        let scene = track.sector_at(s).scene;

        for v in 0..h {
            for u in 0..w {
                let color = match self.camera.ground_from_pixel(u as f64 + 0.5, v as f64 + 0.5) {
                    None => self.sky_color(scene),
                    Some((xf, yl)) => {
                        // Rotate the vehicle-frame ground point into the
                        // lane-aligned frame.
                        let xa = xf * cos_psi - yl * sin_psi;
                        let ya = xf * sin_psi + yl * cos_psi;
                        if xa <= 0.1 {
                            // Directly under the bumper; treat as road.
                            self.lit(albedo::ROAD, scene, 0.0)
                        } else {
                            let sp = s + xa;
                            // Offset from the (curving) lane center:
                            // the centerline bends by ~κ·xa²/2 over the
                            // preview distance.
                            let kappa = track.curvature_at(sp);
                            let lateral = d + ya - kappa * xa * xa / 2.0;
                            let albedo = self.surface_albedo(track, sp, lateral, xa);
                            self.lit(albedo, scene, xa)
                        }
                    }
                };
                img.set(u, v, color);
            }
        }
        Ok(())
    }

    /// Albedo of the ground at arc position `sp`, lateral offset
    /// `lateral` from the lane center, seen from forward distance `xa`
    /// (for anti-aliasing footprint).
    fn surface_albedo(&self, track: &Track, sp: f64, lateral: f64, xa: f64) -> [f32; 3] {
        let sector = track.sector_at(sp);
        let footprint = self.camera.ground_meters_per_pixel(xa);
        let half_marking = MARKING_WIDTH / 2.0;

        // Candidate marking line centers (lateral offsets from the lane
        // center) and their specs.
        let mut lines: [(f64, crate::track::LaneSpec); 4] = [
            (LANE_WIDTH / 2.0, sector.left_lane),
            (f64::NAN, sector.left_lane),
            (-LANE_WIDTH / 2.0, sector.right_lane),
            (f64::NAN, sector.right_lane),
        ];
        if sector.left_lane.form == crate::situation::LaneForm::DoubleContinuous {
            let off = (MARKING_WIDTH + DOUBLE_GAP) / 2.0;
            lines[0].0 = LANE_WIDTH / 2.0 - off;
            lines[1].0 = LANE_WIDTH / 2.0 + off;
        }
        if sector.right_lane.form == crate::situation::LaneForm::DoubleContinuous {
            let off = (MARKING_WIDTH + DOUBLE_GAP) / 2.0;
            lines[2].0 = -LANE_WIDTH / 2.0 + off;
            lines[3].0 = -LANE_WIDTH / 2.0 - off;
        }

        // Base surface.
        let road_half = LANE_WIDTH / 2.0 + SHOULDER;
        let base = if lateral.abs() <= road_half { albedo::ROAD } else { albedo::GRASS };

        // Blend in the nearest marking line by its pixel coverage.
        let mut best_cover = 0.0f64;
        let mut best_color = base;
        for (center, spec) in lines {
            if center.is_nan() {
                continue;
            }
            if !Track::marking_painted_at(spec.form, sp) {
                continue;
            }
            let dist = (lateral - center).abs();
            let cover = ((half_marking + footprint / 2.0 - dist) / footprint).clamp(0.0, 1.0);
            if cover > best_cover {
                best_cover = cover;
                best_color = match spec.color {
                    crate::situation::LaneColor::White => albedo::WHITE_MARKING,
                    crate::situation::LaneColor::Yellow => albedo::YELLOW_MARKING,
                };
            }
        }
        if best_cover <= 0.0 {
            return base;
        }
        let c = best_cover as f32;
        [
            base[0] * (1.0 - c) + best_color[0] * c,
            base[1] * (1.0 - c) + best_color[1] * c,
            base[2] * (1.0 - c) + best_color[2] * c,
        ]
    }

    /// Applies scene illumination (ambient + head-lights) and tint to an
    /// albedo at forward distance `xf`.
    fn lit(&self, albedo: [f32; 3], scene: SceneKind, xf: f64) -> [f32; 3] {
        let ambient = scene.ambient_illumination();
        let head = scene.headlight_gain() * (-xf / HEADLIGHT_FALLOFF).exp() as f32;
        let level = (ambient + head).min(1.2);
        let tint = scene.tint();
        [albedo[0] * level * tint[0], albedo[1] * level * tint[1], albedo[2] * level * tint[2]]
    }

    /// Sky irradiance for a scene.
    fn sky_color(&self, scene: SceneKind) -> [f32; 3] {
        let level = scene.ambient_illumination() * 0.9;
        let tint = scene.tint();
        [
            albedo::SKY[0] * level * tint[0],
            albedo::SKY[1] * level * tint[1],
            albedo::SKY[2] * level * tint[2],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::situation::{
        LaneColor, LaneForm, RoadLayout, SceneKind, SituationFeatures, TABLE3_SITUATIONS,
    };

    fn day_straight_track() -> Track {
        Track::for_situation(&TABLE3_SITUATIONS[0], 1000.0)
    }

    fn renderer() -> SceneRenderer {
        SceneRenderer::new(Camera::default_automotive())
    }

    /// Find the brightest pixel in a row (marking candidates).
    fn row_argmax(img: &RgbImage, v: usize) -> usize {
        let mut best = 0;
        let mut best_val = -1.0f32;
        for u in 0..img.width() {
            let p = img.get(u, v);
            let lum = p[0] + p[1] + p[2];
            if lum > best_val {
                best_val = lum;
                best = u;
            }
        }
        best
    }

    #[test]
    fn markings_appear_on_expected_sides() {
        let r = renderer();
        let img = r.render(&day_straight_track(), 6.0, 0.0, 0.0);
        let cam = r.camera();
        // Project the left/right marking ground positions at 10 m ahead
        // and verify bright pixels there.
        let (ul, vl) = cam.project_ground(10.0, LANE_WIDTH / 2.0).unwrap();
        let (ur, _) = cam.project_ground(10.0, -LANE_WIDTH / 2.0).unwrap();
        assert!(ul < ur, "left marking must be left of right marking in image");
        let row = vl.round() as usize;
        let bright = row_argmax(&img, row);
        // The brightest pixel in that row is one of the markings.
        assert!(
            (bright as f64 - ul).abs() < 4.0 || (bright as f64 - ur).abs() < 4.0,
            "brightest pixel at column {bright}, expected near {ul:.0} or {ur:.0}"
        );
        // The marking pixel must be much brighter than mid-lane road.
        let (um, vm) = cam.project_ground(10.0, 0.0).unwrap();
        let road = img.get(um.round() as usize, vm.round() as usize);
        let mark = img.get(ul.round() as usize, row);
        assert!(mark[1] > 2.0 * road[1], "marking {mark:?} vs road {road:?}");
    }

    #[test]
    fn lateral_offset_shifts_markings() {
        // Moving the vehicle left (d > 0) moves the left marking toward
        // the image center.
        let r = renderer();
        let centered = r.render(&day_straight_track(), 6.0, 0.0, 0.0);
        let offset = r.render(&day_straight_track(), 6.0, 0.8, 0.0);
        let cam = r.camera();
        let (_, v10) = cam.project_ground(10.0, LANE_WIDTH / 2.0).unwrap();
        let row = v10.round() as usize;
        // Track the left marking: brightest pixel in the left half.
        let left_peak = |img: &RgbImage| -> usize {
            let mut best = 0;
            let mut val = -1.0;
            for u in 0..img.width() / 2 {
                let p = img.get(u, row);
                let l = p[0] + p[1] + p[2];
                if l > val {
                    val = l;
                    best = u;
                }
            }
            best
        };
        assert!(
            left_peak(&offset) > left_peak(&centered),
            "moving left must shift the left marking rightward in the image"
        );
    }

    #[test]
    fn yellow_lane_renders_yellow() {
        let sit = SituationFeatures::new(
            LaneColor::Yellow,
            LaneForm::Continuous,
            RoadLayout::Straight,
            SceneKind::Day,
        );
        let track = Track::for_situation(&sit, 500.0);
        let r = renderer();
        let img = r.render(&track, 6.0, 0.0, 0.0);
        let cam = r.camera();
        let (ul, vl) = cam.project_ground(8.0, LANE_WIDTH / 2.0).unwrap();
        let px = img.get(ul.round() as usize, vl.round() as usize);
        assert!(px[0] > 2.0 * px[2], "yellow marking must have R >> B, got {px:?}");
    }

    #[test]
    fn night_is_darker_than_day() {
        let day = Track::for_situation(&TABLE3_SITUATIONS[0], 500.0);
        let night = Track::for_situation(&TABLE3_SITUATIONS[4], 500.0);
        let r = renderer();
        let d = r.render(&day, 6.0, 0.0, 0.0);
        let n = r.render(&night, 6.0, 0.0, 0.0);
        assert!(n.mean() < 0.6 * d.mean());
    }

    #[test]
    fn headlights_light_the_near_field_in_dark() {
        let dark = Track::for_situation(&TABLE3_SITUATIONS[6], 500.0);
        let r = renderer();
        let img = r.render(&dark, 6.0, 0.0, 0.0);
        let cam = r.camera();
        let (un, vn) = cam.project_ground(5.0, 0.0).unwrap();
        let (uf, vf) = cam.project_ground(45.0, 0.0).unwrap();
        let near = img.get(un.round() as usize, vn.round() as usize);
        let far = img.get(uf.round() as usize, vf.round() as usize);
        assert!(near[1] > 1.5 * far[1], "near road {near:?} must outshine far road {far:?}");
    }

    #[test]
    fn dotted_lane_has_gaps() {
        let sit = SituationFeatures::new(
            LaneColor::White,
            LaneForm::Dotted,
            RoadLayout::Straight,
            SceneKind::Day,
        );
        let track = Track::for_situation(&sit, 500.0);
        let r = renderer();
        let img = r.render(&track, 0.0, 0.0, 0.0);
        let cam = r.camera();
        // Sample the left marking line every 0.5 m from 5 m to 20 m: some
        // samples painted, some not.
        let mut bright = 0;
        let mut dark = 0;
        let mut x = 5.0;
        while x < 20.0 {
            let (u, v) = cam.project_ground(x, LANE_WIDTH / 2.0).unwrap();
            let px = img.get(u.round() as usize, v.round() as usize);
            if px[1] > 0.4 {
                bright += 1;
            } else {
                dark += 1;
            }
            x += 0.5;
        }
        assert!(bright > 3 && dark > 3, "dashes: {bright} bright, {dark} dark samples");
    }

    #[test]
    fn right_turn_curves_markings_rightward() {
        let sit = SituationFeatures::new(
            LaneColor::White,
            LaneForm::Continuous,
            RoadLayout::RightTurn,
            SceneKind::Day,
        );
        let track = Track::for_situation(&sit, 1000.0);
        let r = renderer();
        let img = r.render(&track, 0.0, 0.0, 0.0);
        let straight = r.render(&day_straight_track(), 6.0, 0.0, 0.0);
        let cam = r.camera();
        // At a far preview distance, the turn's left marking is shifted
        // right (toward smaller lateral offset) vs the straight road.
        let (_, v_far) = cam.project_ground(40.0, LANE_WIDTH / 2.0).unwrap();
        let row = v_far.round() as usize;
        let peak_turn = row_argmax(&img, row);
        let peak_straight = row_argmax(&straight, row);
        assert!(
            peak_turn > peak_straight,
            "right turn must shift far markings right: {peak_turn} vs {peak_straight}"
        );
    }

    #[test]
    fn render_into_matches_render() {
        let r = renderer();
        let track = day_straight_track();
        let fresh = r.render(&track, 6.0, 0.2, 0.01);
        // Reused buffer arrives with the wrong dimensions and stale
        // contents; the output must still be bit-identical.
        let mut reused = RgbImage::filled(8, 8, [9.0, 9.0, 9.0]);
        r.render_into(&track, 6.0, 0.2, 0.01, &mut reused).unwrap();
        assert_eq!(fresh, reused);
    }

    #[test]
    fn render_into_rejects_invalid_deserialized_camera() {
        let json = r#"{"width":0,"height":256,"focal":300.0,"cu":256.0,
                       "cv":128.0,"height_m":1.3,"pitch":0.1}"#;
        let cam: Camera = serde_json::from_str(json).unwrap();
        let r = SceneRenderer::new(cam);
        let mut out = RgbImage::new(1, 1);
        let err = r.render_into(&day_straight_track(), 0.0, 0.0, 0.0, &mut out).unwrap_err();
        assert!(matches!(err, RenderError::InvalidCamera(_)));
        assert!(err.to_string().contains("invalid camera"));
    }

    #[test]
    fn sky_above_horizon() {
        let r = renderer();
        let img = r.render(&day_straight_track(), 0.0, 0.0, 0.0);
        let sky = img.get(256, 10);
        assert!(sky[2] > sky[0], "sky must be blue-ish, got {sky:?}");
    }
}
