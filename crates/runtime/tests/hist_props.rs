//! Property tests over the latency histograms: merge equivalence and
//! percentile ordering.

use lkas_runtime::{Counter, LatencyHistogram, Metrics, Stage};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-worker histograms merged in any order equal the histogram a
    /// single thread would have recorded, whatever the interleaving of
    /// observations across workers.
    #[test]
    fn merged_worker_histograms_equal_single_thread(
        values in proptest::collection::vec(0u64..50_000_000, 48),
        workers in proptest::collection::vec(0usize..4, 48),
    ) {
        let locals: Vec<LatencyHistogram> =
            (0..4).map(|_| LatencyHistogram::new()).collect();
        let single = LatencyHistogram::new();
        for (ns, w) in values.iter().zip(&workers) {
            locals[*w].record_ns(*ns);
            single.record_ns(*ns);
        }
        let merged = LatencyHistogram::new();
        for local in &locals {
            merged.merge_from(local);
        }
        prop_assert_eq!(merged.snapshot(), single.snapshot());
    }

    /// The same equivalence holds one level up, across whole `Metrics`
    /// registries (stage histograms and counters together).
    #[test]
    fn merged_worker_registries_equal_single_thread(
        values in proptest::collection::vec(1u64..10_000_000, 32),
        workers in proptest::collection::vec(0usize..3, 32),
        stages in proptest::collection::vec(0usize..Stage::ALL.len(), 32),
    ) {
        let locals: Vec<Metrics> = (0..3).map(|_| Metrics::new()).collect();
        let single = Metrics::new();
        for ((ns, w), s) in values.iter().zip(&workers).zip(&stages) {
            let stage = Stage::ALL[*s];
            locals[*w].record(stage, Duration::from_nanos(*ns));
            locals[*w].incr(Counter::Cycles);
            single.record(stage, Duration::from_nanos(*ns));
            single.incr(Counter::Cycles);
        }
        let shared = Metrics::new();
        for local in &locals {
            shared.merge_from(local);
        }
        prop_assert_eq!(shared.snapshot(), single.snapshot());
    }

    /// Percentile estimates are ordered: p50 ≤ p90 ≤ p99 ≤ max, for any
    /// observation set.
    #[test]
    fn percentiles_are_monotone(
        values in proptest::collection::vec(0u64..u64::MAX / 2, 40),
    ) {
        let h = LatencyHistogram::new();
        for ns in &values {
            h.record_ns(*ns);
        }
        let s = h.snapshot();
        let p50 = s.percentile_ns(0.50);
        let p90 = s.percentile_ns(0.90);
        let p99 = s.percentile_ns(0.99);
        prop_assert!(p50 <= p90, "p50 {} > p90 {}", p50, p90);
        prop_assert!(p90 <= p99, "p90 {} > p99 {}", p90, p99);
        prop_assert!(p99 <= s.max_ns, "p99 {} > max {}", p99, s.max_ns);
    }

    /// The snapshot percentiles surfaced by `Metrics` keep the same
    /// ordering (the JSON artifact can never show a crossed tail).
    #[test]
    fn snapshot_percentiles_are_monotone(
        values in proptest::collection::vec(1u64..1_000_000_000, 24),
    ) {
        let m = Metrics::new();
        for ns in &values {
            m.record(Stage::Control, Duration::from_nanos(*ns));
        }
        let snap = m.snapshot();
        let control = snap.stage("control").unwrap();
        let (p50, p90, p99) =
            (control.p50_us.unwrap(), control.p90_us.unwrap(), control.p99_us.unwrap());
        prop_assert!(p50 <= p90 && p90 <= p99 && p99 <= control.max_us,
            "{} {} {} {}", p50, p90, p99, control.max_us);
    }
}
