//! Ablation: per-ISP-configuration QoC on fixed situations.
//!
//! DESIGN.md calls out the ISP knob as the paper's central
//! quality-vs-latency trade: each approximation configuration changes
//! both the image quality (perception noise) *and* the sampling period
//! (through the schedule). This ablation pins everything else (ROI,
//! speed, oracle situations) and sweeps only the ISP knob on a benign
//! situation and a hard one, separating the two effects the
//! characterization balances.
//!
//! Usage: `cargo run --release -p lkas-bench --bin ablation_isp [--half-res]`

use lkas::characterize::{CharacterizeConfig, Characterizer};
use lkas::knobs::KnobTuning;
use lkas::TABLE3_SITUATIONS;
use lkas_bench::{default_threads, render_table, write_result, Executor};
use lkas_imaging::isp::IspConfig;
use lkas_perception::roi::Roi;
use lkas_platform::schedule::ClassifierSet;
use lkas_scene::camera::Camera;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    situation: String,
    isp: String,
    h_ms: f64,
    tau_ms: f64,
    mae: Option<f64>,
    perception_failures: u64,
}

fn main() {
    let mut config = CharacterizeConfig::new().with_track_length(180.0);
    if !std::env::args().any(|a| a == "--half-res") {
        config = config.with_camera(Camera::default_automotive());
    }
    let characterizer = Characterizer::new(config);
    // Benign daytime straight vs the hard dark straight (situation 7).
    let picks = [(0usize, Roi::Roi1, 50.0), (6, Roi::Roi1, 50.0)];
    let mut jobs = Vec::new();
    for (si, roi, speed) in picks {
        let situation = TABLE3_SITUATIONS[si];
        for isp in IspConfig::ALL {
            jobs.push((situation, KnobTuning::new(isp, roi, speed)));
        }
    }
    let results = Executor::new(default_threads())
        .run(jobs.clone(), |(situation, tuning)| characterizer.evaluate(&situation, tuning, 3));

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for ((situation, tuning), r) in jobs.into_iter().zip(results) {
        let isp = tuning.isp;
        let timing = tuning.schedule(ClassifierSet::all()).timing();
        let mae = if r.crashed { None } else { r.overall_mae() };
        rows.push(vec![
            situation.describe(),
            isp.name().to_string(),
            format!("{:.0}", timing.h_ms),
            format!("{:.1}", timing.tau_ms),
            mae.map(|m| format!("{m:.3}")).unwrap_or_else(|| "CRASH".into()),
            r.perception_failures.to_string(),
        ]);
        json_rows.push(AblationRow {
            situation: situation.describe(),
            isp: isp.name().to_string(),
            h_ms: timing.h_ms,
            tau_ms: timing.tau_ms,
            mae,
            perception_failures: r.perception_failures,
        });
    }
    println!("Ablation — ISP knob sweep at fixed ROI/speed (oracle situations)");
    println!("{}", render_table(&["situation", "ISP", "h", "τ", "MAE", "PR failures"], &rows));
    println!(
        "reading: approximate configurations buy a shorter period (h 45→25) at the cost of \
         image quality; in the dark the quality side dominates — exactly the balance Table III encodes."
    );
    write_result("ablation_isp", &json_rows);
}
