//! Static situation study (a small slice of Fig. 6).
//!
//! Compares the four Table V cases on three contrasting situations: a
//! benign daytime straight, a right turn, and a dotted-lane left turn.
//! Shows the paper's core robustness story: Case 1 fails on turns,
//! Case 2 fails on dotted turns, Cases 3/4 survive everywhere, and
//! Case 4's situation-tuned ISP improves the QoC.
//!
//! Run with: `cargo run --release --example static_situations`

use lkas::cases::Case;
use lkas::hil::{HilConfig, HilSimulator, SituationSource};
use lkas::TABLE3_SITUATIONS;
use lkas_scene::track::Track;

fn main() {
    // Situations 1 (straight/day), 8 (right turn), 20 (left, dotted).
    let picks = [0usize, 7, 19];
    println!("{:<38}{:>10}{:>10}{:>10}{:>10}", "situation", "case 1", "case 2", "case 3", "case 4");
    for &si in &picks {
        let situation = TABLE3_SITUATIONS[si];
        let mut cells = Vec::new();
        for case in [Case::Case1, Case::Case2, Case::Case3, Case::Case4] {
            let track = Track::for_situation(&situation, 250.0);
            let config = HilConfig::new(case, SituationSource::Oracle).with_seed(3);
            let result = HilSimulator::new(track, config).run();
            cells.push(if result.crashed {
                "FAIL".to_string()
            } else {
                format!("{:.3}", result.overall_mae().unwrap_or(f64::NAN))
            });
        }
        println!(
            "{:<38}{:>10}{:>10}{:>10}{:>10}",
            situation.describe(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
    println!("\n(values are MAE of the look-ahead deviation in meters; FAIL = lane departure)");
}
