//! Sliding-window lane-pixel search and polynomial lane fitting.
//!
//! Works bottom-up through the binarized bird's-eye mask (paper Sec. II:
//! "candidate lane pixels are determined using sliding windows from
//! bottom to top of the image, and curve fitting is done using a
//! second-order polynomial").

use crate::bev::BevImage;
use crate::threshold::BinaryMask;
use lkas_linalg::polyfit::{polyfit_into, polyval, PolyfitScratch};

/// Number of vertical windows.
pub const N_WINDOWS: usize = 12;
/// Search margin around the running center, in meters of ground.
pub const MARGIN_M: f64 = 0.55;
/// Minimum pixels inside a window to recenter on them.
pub const MIN_PIX_RECENTER: usize = 12;
/// Minimum pixels for a lane fit to be accepted.
pub const MIN_PIX_FIT: usize = 40;
/// Minimum row span (fraction of grid height) for a fit to be accepted.
pub const MIN_ROW_SPAN: f64 = 0.25;

/// A fitted lane boundary `col(row) = c0 + c1·row + c2·row²`.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneFit {
    /// Polynomial coefficients, constant term first.
    pub coeffs: [f64; 3],
    /// Number of pixels supporting the fit.
    pub n_pixels: usize,
    /// Row span of the supporting pixels (max − min).
    pub row_span: usize,
    /// Base (bottom) column where the search started.
    pub base_col: usize,
}

impl LaneFit {
    /// Evaluates the fitted boundary column at a (fractional) row.
    pub fn col_at(&self, row: f64) -> f64 {
        polyval(&self.coeffs, row)
    }
}

/// Result of the sliding-window search: up to two lane boundaries,
/// labeled by their side of the vehicle.
#[derive(Debug, Clone, Default)]
pub struct SlidingWindowResult {
    /// The boundary left of the vehicle (higher ground lateral).
    pub left: Option<LaneFit>,
    /// The boundary right of the vehicle.
    pub right: Option<LaneFit>,
}

impl SlidingWindowResult {
    /// Number of detected boundaries (0–2).
    pub fn detected(&self) -> usize {
        self.left.is_some() as usize + self.right.is_some() as usize
    }
}

/// Reusable workspace of [`sliding_window_search_with`]: histograms,
/// candidate-pixel lists and the polynomial-fit workspace survive between
/// frames, so the steady-state search performs no heap allocations. One
/// scratch per perception loop; contents carry no state between calls.
#[derive(Debug, Clone, Default)]
pub struct SlidingScratch {
    hist: Vec<usize>,
    hist2: Vec<usize>,
    cols: Vec<f64>,
    rows: Vec<f64>,
    res: Vec<f64>,
    sorted: Vec<f64>,
    cols2: Vec<f64>,
    rows2: Vec<f64>,
    polyfit: PolyfitScratch,
}

impl SlidingScratch {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        SlidingScratch::default()
    }
}

/// Runs the sliding-window lane search over a binarized bird's-eye view.
///
/// Base positions come from a column histogram over the lower half of
/// the mask; the two strongest, sufficiently separated peaks seed the
/// left/right searches. Sides are assigned by the ground lateral position
/// of the base column (positive = left of the vehicle).
///
/// Convenience wrapper over [`sliding_window_search_with`] that allocates
/// a one-shot workspace per call.
pub fn sliding_window_search(bev: &BevImage, mask: &BinaryMask) -> SlidingWindowResult {
    sliding_window_search_with(bev, mask, &mut SlidingScratch::new())
}

/// [`sliding_window_search`] with a caller-owned workspace — the
/// allocation-free search path. Results are identical.
pub fn sliding_window_search_with(
    bev: &BevImage,
    mask: &BinaryMask,
    scratch: &mut SlidingScratch,
) -> SlidingWindowResult {
    let w = mask.width();
    let h = mask.height();
    debug_assert_eq!(w, bev.width());
    debug_assert_eq!(h, bev.height());

    // Column histogram over the lower half.
    scratch.hist.clear();
    scratch.hist.resize(w, 0);
    for row in h / 2..h {
        for col in 0..w {
            if mask.get(col, row) {
                scratch.hist[col] += 1;
            }
        }
    }
    let min_sep = (2.0 / bev.meters_per_col()).round() as usize; // ≥ 2 m apart
    let peak1 = argmax(&scratch.hist);
    let mut result = SlidingWindowResult::default();
    let Some((p1, v1)) = peak1 else { return result };
    if v1 == 0 {
        return result;
    }
    // Suppress around the first peak, find the second.
    scratch.hist2.clear();
    scratch.hist2.extend_from_slice(&scratch.hist);
    let lo = p1.saturating_sub(min_sep / 2);
    let hi = (p1 + min_sep / 2).min(w - 1);
    for v in &mut scratch.hist2[lo..=hi] {
        *v = 0;
    }
    let peak2 = argmax(&scratch.hist2).filter(|&(_, v)| v >= 3);

    for base in std::iter::once(p1).chain(peak2.map(|(p, _)| p)) {
        let Some(fit) = track_lane(bev, mask, base, scratch) else { continue };
        let lateral = bev.lateral_of_col(fit.base_col as f64);
        let slot = if lateral >= 0.0 { &mut result.left } else { &mut result.right };
        // Keep the better-supported fit if both peaks land on one side.
        let better = match slot {
            Some(existing) => fit.n_pixels > existing.n_pixels,
            None => true,
        };
        if better {
            *slot = Some(fit);
        }
    }
    result
}

/// Index and value of the maximum entry.
fn argmax(values: &[usize]) -> Option<(usize, usize)> {
    values.iter().enumerate().max_by_key(|&(_, v)| *v).map(|(i, &v)| (i, v))
}

/// Tracks one lane upward from `base` and fits the polynomial.
fn track_lane(
    bev: &BevImage,
    mask: &BinaryMask,
    base: usize,
    scratch: &mut SlidingScratch,
) -> Option<LaneFit> {
    let w = mask.width();
    let h = mask.height();
    let margin = (MARGIN_M / bev.meters_per_col()).round().max(2.0) as i64;
    let win_h = h / N_WINDOWS;
    let mut center = base as i64;
    scratch.cols.clear();
    scratch.rows.clear();

    for win in 0..N_WINDOWS {
        let row_hi = h - win * win_h; // exclusive
        let row_lo = row_hi.saturating_sub(win_h);
        let c_lo = (center - margin).clamp(0, w as i64 - 1) as usize;
        let c_hi = (center + margin).clamp(0, w as i64 - 1) as usize;
        let mut sum_c = 0.0;
        let mut cnt = 0usize;
        for row in row_lo..row_hi {
            for col in c_lo..=c_hi {
                if mask.get(col, row) {
                    scratch.cols.push(col as f64);
                    scratch.rows.push(row as f64);
                    sum_c += col as f64;
                    cnt += 1;
                }
            }
        }
        if cnt >= MIN_PIX_RECENTER {
            center = (sum_c / cnt as f64).round() as i64;
        }
    }

    let (cols, rows) = (&scratch.cols, &scratch.rows);
    if cols.len() < MIN_PIX_FIT {
        return None;
    }
    let row_min = rows.iter().cloned().fold(f64::INFINITY, f64::min);
    let row_max = rows.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (row_max - row_min) as usize;
    if (span as f64) < MIN_ROW_SPAN * h as f64 {
        return None;
    }
    let mut coeffs = [0.0f64; 3];
    polyfit_into(rows, cols, &mut coeffs, &mut scratch.polyfit).ok()?;
    // Residual-trimmed refit: window-edge pixels and stray blobs (dash
    // ends, noise) otherwise swing the curvature term, which the
    // look-ahead extrapolation then amplifies.
    scratch.res.clear();
    scratch.res.extend(rows.iter().zip(cols).map(|(r, c)| (c - polyval(&coeffs, *r)).abs()));
    scratch.sorted.clear();
    scratch.sorted.extend_from_slice(&scratch.res);
    // Unstable sort: no temporary buffer, and for plain finite values the
    // sorted sequence (hence the median) is the same as a stable sort's.
    scratch.sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let sigma = scratch.sorted[scratch.sorted.len() / 2].max(1.0); // robust scale (median)
    let gate = 2.5 * sigma;
    scratch.cols2.clear();
    scratch.rows2.clear();
    for i in 0..cols.len() {
        if scratch.res[i] <= gate {
            scratch.cols2.push(cols[i]);
            scratch.rows2.push(rows[i]);
        }
    }
    if scratch.cols2.len() >= MIN_PIX_FIT / 2 && scratch.cols2.len() < cols.len() {
        let mut refit = [0.0f64; 3];
        if polyfit_into(&scratch.rows2, &scratch.cols2, &mut refit, &mut scratch.polyfit).is_ok() {
            coeffs = refit;
        }
    }
    Some(LaneFit { coeffs, n_pixels: scratch.cols.len(), row_span: span, base_col: base })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bev::BirdsEye;
    use crate::roi::Roi;
    use crate::threshold::binarize;
    use lkas_imaging::isp::{IspConfig, IspPipeline};
    use lkas_imaging::sensor::{Sensor, SensorConfig};
    use lkas_scene::camera::Camera;
    use lkas_scene::render::SceneRenderer;
    use lkas_scene::situation::{
        LaneColor, LaneForm, RoadLayout, SceneKind, SituationFeatures, TABLE3_SITUATIONS,
    };
    use lkas_scene::track::{Track, LANE_WIDTH};

    fn search_for(
        track: &Track,
        s: f64,
        d: f64,
        roi: Roi,
        seed: u64,
    ) -> (BevImage, SlidingWindowResult) {
        let cam = Camera::default_automotive();
        let frame = SceneRenderer::new(cam.clone()).render(track, s, d, 0.0);
        let raw = Sensor::new(SensorConfig::default(), seed).capture(&frame, 1.0);
        let rgb = IspPipeline::new(IspConfig::S0).process(&raw);
        let be = BirdsEye::new(cam, roi).unwrap();
        let bev = be.rectify(&rgb);
        let mask = binarize(&bev);
        let result = sliding_window_search(&bev, &mask);
        (bev, result)
    }

    #[test]
    fn detects_both_lanes_on_straight_day() {
        let track = Track::for_situation(&TABLE3_SITUATIONS[0], 500.0);
        let (bev, res) = search_for(&track, 10.0, 0.0, Roi::Roi1, 1);
        assert_eq!(res.detected(), 2, "both lanes expected");
        let left = res.left.unwrap();
        let right = res.right.unwrap();
        // Bottom row: boundaries near ±LANE_WIDTH/2.
        let bot = bev.height() as f64 - 1.0;
        let l_lat = bev.lateral_of_col(left.col_at(bot));
        let r_lat = bev.lateral_of_col(right.col_at(bot));
        assert!((l_lat - LANE_WIDTH / 2.0).abs() < 0.25, "left at {l_lat}");
        assert!((r_lat + LANE_WIDTH / 2.0).abs() < 0.25, "right at {r_lat}");
    }

    #[test]
    fn lateral_offset_is_reflected_in_fits() {
        let track = Track::for_situation(&TABLE3_SITUATIONS[0], 500.0);
        let (bev, res) = search_for(&track, 10.0, 0.5, Roi::Roi1, 2);
        let left = res.left.expect("left lane");
        let bot = bev.height() as f64 - 1.0;
        let l_lat = bev.lateral_of_col(left.col_at(bot));
        // Vehicle 0.5 m left of center ⇒ left marking appears at
        // LANE_WIDTH/2 − 0.5 in the vehicle frame.
        assert!((l_lat - (LANE_WIDTH / 2.0 - 0.5)).abs() < 0.25, "left at {l_lat}");
    }

    #[test]
    fn right_turn_with_wrong_roi_degrades() {
        // On a right turn, ROI 1 loses the lanes at preview distance;
        // the correct ROI 2 keeps more supporting pixels.
        let sit = SituationFeatures::new(
            LaneColor::White,
            LaneForm::Continuous,
            RoadLayout::RightTurn,
            SceneKind::Day,
        );
        let track = Track::for_situation(&sit, 1000.0);
        let (_, res_wrong) = search_for(&track, 50.0, 0.0, Roi::Roi1, 3);
        let (_, res_right) = search_for(&track, 50.0, 0.0, Roi::Roi2, 3);
        let support = |r: &SlidingWindowResult| {
            r.left.as_ref().map_or(0, |f| f.n_pixels) + r.right.as_ref().map_or(0, |f| f.n_pixels)
        };
        assert!(
            support(&res_right) > support(&res_wrong),
            "ROI 2 support {} must beat ROI 1 support {}",
            support(&res_right),
            support(&res_wrong)
        );
    }

    #[test]
    fn dotted_lanes_have_fewer_pixels_than_continuous() {
        let cont = Track::for_situation(&TABLE3_SITUATIONS[0], 500.0);
        let dotted = Track::for_situation(&TABLE3_SITUATIONS[1], 500.0);
        let (_, rc) = search_for(&cont, 10.0, 0.0, Roi::Roi1, 4);
        let (_, rd) = search_for(&dotted, 10.0, 0.0, Roi::Roi1, 4);
        let left_pix = |r: &SlidingWindowResult| r.left.as_ref().map_or(0, |f| f.n_pixels);
        assert!(left_pix(&rc) > left_pix(&rd), "{} vs {}", left_pix(&rc), left_pix(&rd));
    }

    #[test]
    fn empty_mask_detects_nothing() {
        let cam = Camera::default_automotive();
        let be = BirdsEye::new(cam, Roi::Roi1).unwrap();
        let bev = be.rectify(&lkas_imaging::image::RgbImage::filled(512, 256, [0.3; 3]));
        let mask = binarize(&bev);
        let res = sliding_window_search(&bev, &mask);
        assert_eq!(res.detected(), 0);
    }
}
