//! Robustness campaign — fault-plan grid × evaluation cases, with the
//! graceful-degradation policy off and on.
//!
//! Emits `artifacts/robustness_report.json` (crash rates, MAE
//! degradation, time in degraded mode) and a telemetry artifact with
//! the aggregated fault/degradation counters. The report is a pure
//! function of `(--seed, --quick)`: any `--threads` value produces the
//! identical bytes, and so does any `--shard i/N` split merged back
//! with the `merge` subcommand.
//!
//! Usage:
//! `cargo run --release -p lkas-bench --bin robustness_campaign
//!  [-- --seed 7 --threads 4 --quick --out PATH --metrics-out PATH]`
//!
//! Sharded (each shard writes a mergeable artifact instead of the
//! report; `--checkpoint` + `--resume` let a killed shard pick up where
//! it stopped):
//! `robustness_campaign --quick --shard 0/2 --checkpoint ckpt0.jsonl --resume
//!  --shard-out shard0.json`
//!
//! Merge (validates the shards form one complete partition of the same
//! configuration, then emits the byte-identical report plus the merged
//! telemetry):
//! `robustness_campaign merge shard0.json shard1.json --out PATH
//!  --metrics-out PATH`

use lkas_bench::robustness::{
    assemble_report, campaign_spec, config_from_params, report_from_merged, run_campaign_shard,
    write_report, CampaignConfig, RobustnessReport,
};
use lkas_bench::{arg_value, default_threads, render_table, write_metrics, Metrics, ARTIFACTS_DIR};
use lkas_runtime::{merge_shard_files, read_shard_file, write_shard_file, Shard};
use std::path::PathBuf;
use std::sync::Arc;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn report_out_path() -> PathBuf {
    arg_value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(ARTIFACTS_DIR).join("robustness_report.json"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("merge") {
        merge(&args[1..]);
        return;
    }

    let cfg = CampaignConfig {
        seed: arg_value("--seed").and_then(|s| s.parse().ok()).unwrap_or(7),
        threads: arg_value("--threads")
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(default_threads),
        quick: args.iter().any(|a| a == "--quick"),
    };
    let shard = match arg_value("--shard") {
        Some(text) => Shard::parse(&text).unwrap_or_else(|e| fail(&e)),
        None => Shard::full(),
    };
    let spec = campaign_spec(
        &cfg,
        shard,
        arg_value("--checkpoint").map(PathBuf::from),
        args.iter().any(|a| a == "--resume"),
    );

    let metrics = Arc::new(Metrics::new());
    let run = run_campaign_shard(&cfg, &spec, Some(&metrics));
    eprintln!(
        "[campaign] shard {shard}: {} owned, {} evaluated, {} restored (grid {})",
        run.stats.owned, run.stats.evaluated, run.stats.restored, run.stats.grid_size
    );

    if !shard.is_full() || arg_value("--shard-out").is_some() {
        let out = arg_value("--shard-out").map(PathBuf::from).unwrap_or_else(|| {
            PathBuf::from(ARTIFACTS_DIR)
                .join(format!("robustness_shard_{}of{}.json", shard.index, shard.count))
        });
        write_shard_file(&out, &spec, &run, Some(&metrics));
        eprintln!("[shard] {}", out.display());
        return;
    }

    let report = assemble_report(&cfg, run.entries.into_iter().map(|(_, e)| e).collect());
    print_report(&cfg, &report);
    write_report(&report, &report_out_path());
    write_metrics("robustness_campaign", &metrics);
}

/// `robustness_campaign merge SHARD...`: fold shard artifacts into the
/// full report and the merged telemetry artifact.
fn merge(args: &[String]) {
    let mut paths = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" | "--metrics-out" => {
                iter.next();
            }
            flag if flag.starts_with("--") => fail(&format!("unknown merge flag `{flag}`")),
            path => paths.push(PathBuf::from(path)),
        }
    }
    if paths.is_empty() {
        fail("merge needs at least one shard file");
    }
    let files =
        paths.iter().map(|p| read_shard_file(p).unwrap_or_else(|e| fail(&e))).collect::<Vec<_>>();
    let mut merged = merge_shard_files(files).unwrap_or_else(|e| fail(&e));
    let cfg = config_from_params(&merged.params).unwrap_or_else(|e| fail(&e));
    let report = report_from_merged(&cfg, &mut merged).unwrap_or_else(|e| fail(&e));
    eprintln!("[merge] {} shard file(s), {} grid entries", paths.len(), report.entries.len());
    print_report(&cfg, &report);
    write_report(&report, &report_out_path());
    write_metrics("robustness_campaign", &merged.metrics);
}

fn print_report(cfg: &CampaignConfig, report: &RobustnessReport) {
    let rows: Vec<Vec<String>> = report
        .entries
        .iter()
        .map(|e| {
            vec![
                e.case.clone(),
                e.plan.clone(),
                if e.policy { "on" } else { "off" }.to_string(),
                if e.crashed { "CRASH" } else { "ok" }.to_string(),
                e.mae.map_or("-".to_string(), |m| format!("{m:.4}")),
                e.degraded_samples.to_string(),
                e.measurement_holds.to_string(),
            ]
        })
        .collect();
    println!(
        "Robustness campaign (seed {}, {} grid)",
        cfg.seed,
        if cfg.quick { "quick" } else { "full" }
    );
    println!(
        "{}",
        render_table(&["case", "plan", "policy", "outcome", "MAE (m)", "degraded", "holds"], &rows)
    );
    let s = &report.summary;
    println!(
        "crash rate: {:.2} (policy off) -> {:.2} (policy on); time degraded: {:.1}%",
        s.crash_rate_policy_off,
        s.crash_rate_policy_on,
        s.time_in_degraded_frac * 100.0
    );
}
