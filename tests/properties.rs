//! Property-based tests over the numerical substrates.

use lkas_linalg::expm::{expm, zoh_discretize_with_delay};
use lkas_linalg::polyfit::{polyfit, polyval};
use lkas_linalg::{lu, lyapunov, Homography, Mat};
use proptest::prelude::*;

fn small_matrix(n: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-2.0..2.0f64, n * n)
        .prop_map(move |v| Mat::from_vec(n, n, v).expect("sized"))
}

/// A comfortably invertible matrix: diagonally dominant by construction.
fn invertible_matrix(n: usize) -> impl Strategy<Value = Mat> {
    small_matrix(n).prop_map(move |mut m| {
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] += row_sum + 1.0;
        }
        m
    })
}

/// A Schur-stable matrix: scaled below unit spectral radius via its
/// 1-norm (a crude but sound bound).
fn stable_matrix(n: usize) -> impl Strategy<Value = Mat> {
    small_matrix(n).prop_map(|m| {
        let bound = m.norm_1().max(1.0);
        m.scale(0.85 / bound)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_roundtrips(a in invertible_matrix(4), x in proptest::collection::vec(-5.0..5.0f64, 4)) {
        let xv = Mat::col_vec(&x);
        let b = a.matmul(&xv).unwrap();
        let solved = lu::solve(&a, &b).unwrap();
        prop_assert!(solved.approx_eq(&xv, 1e-6), "solve mismatch");
    }

    #[test]
    fn lu_inverse_is_two_sided(a in invertible_matrix(3)) {
        let inv = lu::inverse(&a).unwrap();
        let eye = Mat::identity(3);
        prop_assert!(a.matmul(&inv).unwrap().approx_eq(&eye, 1e-8));
        prop_assert!(inv.matmul(&a).unwrap().approx_eq(&eye, 1e-8));
    }

    #[test]
    fn expm_inverse_property(a in small_matrix(3)) {
        // e^A · e^{-A} = I
        let e = expm(&a).unwrap();
        let e_neg = expm(&a.scale(-1.0)).unwrap();
        prop_assert!(e.matmul(&e_neg).unwrap().approx_eq(&Mat::identity(3), 1e-7));
    }

    #[test]
    fn zoh_delay_segments_always_sum(
        a in small_matrix(3),
        tau_frac in 0.0..1.0f64,
    ) {
        let b = Mat::col_vec(&[1.0, 0.5, -0.25]);
        let h = 0.05;
        let tau = tau_frac * h;
        let (_, b_prev, b_curr) = zoh_discretize_with_delay(&a, &b, h, tau).unwrap();
        let full = lkas_linalg::expm::zoh_discretize(&a, &b, h).unwrap();
        prop_assert!(b_prev.add_mat(&b_curr).unwrap().approx_eq(&full.bd, 1e-8));
    }

    #[test]
    fn polyfit_reconstructs_exact_polynomials(
        c0 in -3.0..3.0f64,
        c1 in -3.0..3.0f64,
        c2 in -1.0..1.0f64,
    ) {
        let xs: Vec<f64> = (0..12).map(|i| i as f64 * 0.7 - 4.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
        let c = polyfit(&xs, &ys, 2).unwrap();
        for &x in &xs {
            prop_assert!((polyval(&c, x) - (c0 + c1 * x + c2 * x * x)).abs() < 1e-7);
        }
    }

    #[test]
    fn lyapunov_solution_certifies_stable_systems(a in stable_matrix(3)) {
        let q = Mat::identity(3);
        let p = lyapunov::solve_discrete_lyapunov(&a, &q).unwrap();
        prop_assert!(p.is_positive_definite(), "P must be PD for stable A");
        let res = lyapunov::lyapunov_residual(&a, &p, &q).unwrap();
        prop_assert!(res.max_abs() < 1e-8);
    }

    #[test]
    fn homography_roundtrips_on_noncollinear_quads(
        dx in 0.2..2.0f64,
        dy in 0.2..2.0f64,
        skew in -0.4..0.4f64,
    ) {
        let src = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
        let dst = [
            (0.0, 0.0),
            (dx, skew),
            (dx + skew, dy),
            (skew.abs() * 0.5, dy),
        ];
        let h = Homography::from_points(&src, &dst).unwrap();
        let hi = h.inverse().unwrap();
        for p in [(0.3, 0.3), (0.8, 0.2), (0.5, 0.9)] {
            let (u, v) = h.apply(p.0, p.1);
            let (x, y) = hi.apply(u, v);
            prop_assert!((x - p.0).abs() < 1e-8 && (y - p.1).abs() < 1e-8);
        }
    }
}

mod imaging_props {
    use super::*;
    use lkas_imaging::image::{RawImage, RgbImage};
    use lkas_imaging::isp::{IspConfig, IspPipeline};
    use lkas_imaging::sensor::{Sensor, SensorConfig};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// ISP output stays in [0, 1] for arbitrary RAW inputs, for
        /// every configuration.
        #[test]
        fn isp_output_is_unit_bounded(values in proptest::collection::vec(0.0..1.0f32, 16 * 8)) {
            let mut raw = RawImage::new(16, 8);
            raw.as_mut_slice().copy_from_slice(&values);
            for cfg in IspConfig::ALL {
                let out = IspPipeline::new(cfg).process(&raw);
                prop_assert!(out.as_slice().iter().all(|v| (0.0..=1.0).contains(v)), "{cfg}");
            }
        }

        /// Sensor capture is bounded and deterministic in the seed.
        #[test]
        fn sensor_capture_bounded_and_deterministic(
            level in 0.0..1.0f32,
            illum in 0.05..1.0f32,
            seed in 0u64..1000,
        ) {
            let scene = RgbImage::filled(8, 8, [level, level, level]);
            let a = Sensor::new(SensorConfig::default(), seed).capture(&scene, illum);
            let b = Sensor::new(SensorConfig::default(), seed).capture(&scene, illum);
            prop_assert_eq!(&a, &b);
            prop_assert!(a.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }
}

mod scene_props {
    use super::*;
    use lkas::TABLE3_SITUATIONS;
    use lkas_scene::track::Track;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sector lookup is consistent with sector start offsets.
        #[test]
        fn track_sector_lookup_consistent(s in 0.0..1300.0f64) {
            let track = Track::fig7_track();
            let idx = track.sector_index_at(s);
            prop_assert!(s >= track.sector_start(idx) - 1e-9);
            if idx + 1 < track.sectors().len() {
                prop_assert!(s < track.sector_start(idx + 1) + 1e-9);
            }
        }

        /// Camera ground projection round-trips for points in the
        /// usable field of view.
        #[test]
        fn camera_projection_roundtrip(x in 3.0..60.0f64, y in -6.0..6.0f64) {
            let cam = lkas_scene::camera::Camera::default_automotive();
            if let Some((u, v)) = cam.project_ground(x, y) {
                if let Some((bx, by)) = cam.ground_from_pixel(u, v) {
                    prop_assert!((bx - x).abs() < 1e-6 && (by - y).abs() < 1e-6);
                }
            }
        }

        /// Every Table III situation renders a frame whose values are
        /// finite and bounded.
        #[test]
        fn rendering_is_bounded(si in 0usize..21, s in 0.0..400.0f64, d in -1.0..1.0f64) {
            let cam = lkas_scene::camera::Camera::new(64, 32, 40.0, 1.3, 0.1);
            let track = Track::for_situation(&TABLE3_SITUATIONS[si], 500.0);
            let frame = lkas_scene::render::SceneRenderer::new(cam).render(&track, s, d, 0.0);
            prop_assert!(frame.as_slice().iter().all(|v| v.is_finite() && *v >= 0.0 && *v <= 1.3));
        }
    }
}

mod control_props {
    use super::*;
    use lkas_control::design::{design_controller, ControllerConfig};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Any design point on the 5 ms grid with τ = h (the paper's
        /// footnote-5 regime) yields a stable closed loop across the
        /// operating envelope.
        #[test]
        fn designs_on_grid_are_stable(
            h_steps in 3u32..10,
            speed in 25.0..55.0f64,
        ) {
            let h = h_steps as f64 * 5.0;
            let cfg = ControllerConfig { speed_kmph: speed, h_ms: h, tau_ms: h };
            let ctl = design_controller(&cfg).unwrap();
            prop_assert!(ctl.is_stable(), "unstable at v={speed}, h={h}");
        }
    }
}
