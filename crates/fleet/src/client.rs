//! A thin blocking client for the fleet protocol, used by `fleetctl`
//! and the test suites.

use crate::proto::{
    decode_response, encode_request, read_frame, Event, FrameRead, Request, RequestOp,
    SubmitRequest, DEFAULT_MAX_LINE_BYTES,
};
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// The connection ended where an event was expected (clean EOF or
    /// a frame truncated by the peer going away).
    Disconnected(String),
    /// The server's frame could not be interpreted.
    Protocol(String),
}

impl ClientError {
    /// `true` when the failure means the daemon went away mid-stream
    /// (transport error or EOF), as opposed to a frame the client could
    /// not interpret. `fleetctl` maps this onto its distinct
    /// connection-lost exit code.
    pub fn is_connection_lost(&self) -> bool {
        matches!(self, ClientError::Io(_) | ClientError::Disconnected(_))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Disconnected(msg) => write!(f, "connection lost: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a fleet daemon.
pub struct FleetClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl FleetClient {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(FleetClient { writer, reader: BufReader::new(stream) })
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send(&mut self, op: RequestOp) -> std::io::Result<()> {
        let frame = encode_request(&Request::new(op));
        self.writer.write_all(frame.as_bytes())?;
        self.writer.flush()
    }

    /// Sends a raw, already-framed line (test hook for malformed
    /// traffic).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Reads the next event frame.
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] on EOF, [`ClientError::Protocol`]
    /// on an undecodable frame, [`ClientError::Io`] on transport
    /// failure.
    pub fn next_event(&mut self) -> Result<Event, ClientError> {
        match read_frame(&mut self.reader, DEFAULT_MAX_LINE_BYTES)? {
            FrameRead::Frame(line) => decode_response(&line)
                .map(|response| response.event)
                .map_err(|e| ClientError::Protocol(format!("{:?}: {}", e.kind, e.message))),
            FrameRead::Eof => Err(ClientError::Disconnected("connection closed".to_string())),
            FrameRead::Truncated => {
                Err(ClientError::Disconnected("response truncated mid-frame".to_string()))
            }
            FrameRead::Oversized { at_least } => {
                Err(ClientError::Protocol(format!("oversized response frame ({at_least}+ bytes)")))
            }
        }
    }

    /// Submits a job and returns the server's first answer
    /// (`Accepted`, `Rejected`, or `Error`).
    ///
    /// # Errors
    ///
    /// Propagates transport/protocol failures.
    pub fn submit(&mut self, submit: SubmitRequest) -> Result<Event, ClientError> {
        self.send(RequestOp::Submit(submit))?;
        self.next_event()
    }

    /// Reads events until a terminal one and returns it, handing each
    /// intermediate event (progress, telemetry) to `on_event`.
    ///
    /// # Errors
    ///
    /// Propagates transport/protocol failures.
    pub fn wait_terminal(
        &mut self,
        mut on_event: impl FnMut(&Event),
    ) -> Result<Event, ClientError> {
        loop {
            let event = self.next_event()?;
            if event.is_terminal() {
                return Ok(event);
            }
            on_event(&event);
        }
    }
}
