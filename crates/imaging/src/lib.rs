//! Imaging substrate: RAW sensor frames and the five-stage ISP pipeline.
//!
//! The paper's LKAS processes camera frames through an image signal
//! processor (ISP) with five essential stages (Sec. II, Fig. 3(a)):
//! **demosaic** (DM), **denoise** (DN), **color map** (CM), **gamut map**
//! (GM) and **tone map** (TM). The hardware- and situation-aware method
//! *approximates* the ISP by skipping stages — configurations S0–S8 of
//! Table II — trading image quality for latency.
//!
//! This crate implements:
//!
//! * [`image`] — the [`RawImage`](image::RawImage) (Bayer RGGB mosaic),
//!   [`RgbImage`](image::RgbImage) and [`GrayImage`](image::GrayImage)
//!   containers,
//! * [`sensor`] — the camera sensor model (spectral crosstalk,
//!   illumination-scaled shot/read noise, Bayer sampling) used by the
//!   scene renderer,
//! * [`isp`] — the five stages, the [`IspStage`](isp::IspStage) /
//!   [`IspConfig`](isp::IspConfig) knobs (S0–S8) and the
//!   [`IspPipeline`](isp::IspPipeline),
//! * [`kernel`] — the [`KernelBackend`](kernel::KernelBackend) toggle
//!   selecting scalar-reference vs. chunked-lane (and Q2.14
//!   fixed-point) interiors for the hot kernels,
//! * [`pool`] — the [`FramePool`](pool::FramePool) buffer arena and the
//!   [`Scratch`](pool::Scratch) working memory of the zero-allocation
//!   `*_into` frame path,
//! * [`metrics`] — MSE / PSNR image-quality metrics used to quantify the
//!   approximation error.
//!
//! # Example
//!
//! ```
//! use lkas_imaging::image::RgbImage;
//! use lkas_imaging::isp::{IspConfig, IspPipeline};
//! use lkas_imaging::sensor::{Sensor, SensorConfig};
//!
//! // Capture a flat mid-gray scene and run the full ISP (S0).
//! let scene = RgbImage::filled(64, 32, [0.4, 0.4, 0.4]);
//! let mut sensor = Sensor::new(SensorConfig::default(), 42);
//! let raw = sensor.capture(&scene, 1.0);
//! let rgb = IspPipeline::new(IspConfig::S0).process(&raw);
//! assert_eq!((rgb.width(), rgb.height()), (64, 32));
//! ```

pub mod image;
pub mod isp;
pub mod kernel;
pub mod metrics;
pub mod pool;
pub mod sensor;

pub use image::{GrayImage, RawImage, RgbImage};
pub use isp::{IspConfig, IspPipeline, IspStage};
pub use kernel::KernelBackend;
pub use pool::{FramePool, PoolStats, Scratch};
pub use sensor::{Sensor, SensorConfig};
