//! Feature extraction from ISP output frames.
//!
//! Stands in for the ResNet-18 convolutional trunk. Instead of learned
//! convolutions, the extractor combines photometric statistics with a
//! geometry-aware analysis of the marking evidence on the ground plane:
//!
//! * a coarse **luma grid** (global scene structure / brightness field),
//! * **color statistics** with illumination-normalized chroma ratios
//!   (lane color and scene tint survive brightness changes),
//! * a **brightness histogram** (day / night / dark / dawn / dusk
//!   separation),
//! * **ground-plane lane geometry**: every road pixel is back-projected
//!   onto the ground, marking-like evidence is z-score gated per
//!   longitudinal band, and the per-band left/right marking centroids
//!   yield a lane-center track whose quadratic fit exposes heading
//!   (linear term) and road curvature (quadratic term) independent of
//!   the vehicle's lateral pose; per-side masses, spreads and
//!   band-to-band mass variation expose the lane form (dotted vs
//!   continuous vs double).

use lkas_imaging::image::RgbImage;
use lkas_linalg::polyfit::polyfit;
use lkas_scene::camera::Camera;

/// Number of luma-grid cells (8 × 4).
const GRID_W: usize = 8;
const GRID_H: usize = 4;
/// Brightness histogram bins.
const HIST_BINS: usize = 8;
/// Longitudinal ground bands (3 m each, from `X_NEAR`).
const BANDS: usize = 8;
/// Near edge of the analyzed ground region (m).
const X_NEAR: f64 = 4.0;
/// Band length (m).
const BAND_LEN: f64 = 3.0;
/// Lateral half-extent of the analyzed ground region (m).
const Y_HALF: f64 = 7.0;
/// Geometry feature count (see `geometry_features`).
const GEOM_FEATURES: usize = 11;

/// Total feature dimensionality produced by [`extract`].
pub const FEATURE_DIM: usize = GRID_W * GRID_H + 6 + HIST_BINS + GEOM_FEATURES;

/// Extracts the feature vector of a frame.
///
/// The camera supplies the ground-plane back-projection; it must be the
/// camera the frame was captured with.
///
/// # Panics
///
/// Panics if the frame is smaller than 8×4 pixels.
///
/// # Example
///
/// ```
/// use lkas_imaging::image::RgbImage;
/// use lkas_nn::features::{extract, FEATURE_DIM};
/// use lkas_scene::camera::Camera;
///
/// let cam = Camera::default_automotive();
/// let frame = RgbImage::filled(512, 256, [0.4, 0.4, 0.4]);
/// let f = extract(&frame, &cam);
/// assert_eq!(f.len(), FEATURE_DIM);
/// ```
pub fn extract(frame: &RgbImage, camera: &Camera) -> Vec<f32> {
    let w = frame.width();
    let h = frame.height();
    assert!(w >= GRID_W && h >= GRID_H, "frame too small for feature grid");
    let mut features = Vec::with_capacity(FEATURE_DIM);
    let horizon = camera.horizon_row();

    // --- Luma grid -------------------------------------------------------
    for gy in 0..GRID_H {
        for gx in 0..GRID_W {
            let x0 = gx * w / GRID_W;
            let x1 = (gx + 1) * w / GRID_W;
            let y0 = gy * h / GRID_H;
            let y1 = (gy + 1) * h / GRID_H;
            let mut sum = 0.0f32;
            let mut n = 0u32;
            for y in y0..y1 {
                for x in x0..x1 {
                    let p = frame.get(x, y);
                    sum += 0.299 * p[0] + 0.587 * p[1] + 0.114 * p[2];
                    n += 1;
                }
            }
            features.push(if n > 0 { sum / n as f32 } else { 0.0 });
        }
    }

    // --- Color statistics (road region only) ------------------------------
    let road_start = (horizon.max(0.0) as usize).min(h - 1);
    let mut means = [0.0f32; 3];
    let mut yellow = 0.0f32;
    let mut n = 0u32;
    for y in road_start..h {
        for x in 0..w {
            let p = frame.get(x, y);
            for c in 0..3 {
                means[c] += p[c];
            }
            yellow += ((p[0] + p[1]) / 2.0 - p[2]).max(0.0);
            n += 1;
        }
    }
    let nf = (n.max(1)) as f32;
    let (mr, mg, mb) = (means[0] / nf, means[1] / nf, means[2] / nf);
    let luma_mean = (0.299 * mr + 0.587 * mg + 0.114 * mb).max(1e-4);
    features.extend_from_slice(&[mr, mg, mb, 4.0 * yellow / nf]);
    // Illumination-normalized chroma ratios: survive the ambient level,
    // expose the scene tint and lane color.
    features.push((mr - mb) / luma_mean);
    features.push((yellow / nf) / luma_mean);

    // --- Brightness histogram (whole frame) -------------------------------
    let mut hist = [0.0f32; HIST_BINS];
    for y in 0..h {
        for x in 0..w {
            let p = frame.get(x, y);
            let l = (0.299 * p[0] + 0.587 * p[1] + 0.114 * p[2]).clamp(0.0, 0.999);
            hist[(l * HIST_BINS as f32) as usize] += 1.0;
        }
    }
    let total = (w * h) as f32;
    features.extend(hist.iter().map(|v| v / total));

    // --- Ground-plane lane geometry ---------------------------------------
    features.extend_from_slice(&geometry_features(frame, camera));

    debug_assert_eq!(features.len(), FEATURE_DIM);
    features
}

/// A marking cluster found in one band: gated-evidence mass (normalized
/// per band pixel), lateral centroid and spread.
#[derive(Debug, Clone, Copy)]
struct Cluster {
    mass: f64,
    centroid: f64,
    spread: f64,
}

/// Lateral histogram resolution for cluster extraction (m).
const Y_BIN: f64 = 0.25;
/// Minimum lateral separation between the two marking clusters (m).
const MIN_CLUSTER_SEP: f64 = 2.0;
/// Half-window around a histogram peak used to refine the cluster (m).
const CLUSTER_WIN: f64 = 0.6;

/// The 11 ground-plane geometry features:
/// `[c0, c1·10, c2·200, massL, massR, mass_ratio, spreadL·5, spreadR·5,
/// cvL, cvR, density·20]`, where `c(x) = c0 + c1·x + c2·x²` is the lane
/// center track fitted over the longitudinal bands.
fn geometry_features(frame: &RgbImage, camera: &Camera) -> [f32; GEOM_FEATURES] {
    let w = frame.width();
    let h = frame.height();
    let horizon = camera.horizon_row().max(0.0) as usize;

    // Pass 1: back-project road pixels, collect per-band score stats and
    // the ground samples for gating.
    let mut samples: Vec<(usize, f64, f64)> = Vec::new(); // band, y, score
    let mut band_sum = [0.0f64; BANDS];
    let mut band_sum2 = [0.0f64; BANDS];
    let mut band_cnt = [0u32; BANDS];
    for v in horizon..h {
        for u in 0..w {
            let Some((gx, gy)) = camera.ground_from_pixel(u as f64, v as f64) else {
                continue;
            };
            if gx < X_NEAR || gx >= X_NEAR + BANDS as f64 * BAND_LEN || gy.abs() > Y_HALF {
                continue;
            }
            let band = ((gx - X_NEAR) / BAND_LEN) as usize;
            let s = score_of(frame.get(u, v)) as f64;
            band_sum[band] += s;
            band_sum2[band] += s * s;
            band_cnt[band] += 1;
            samples.push((band, gy, s));
        }
    }

    // Pass 2: gate by per-band z-score into per-band lateral histograms.
    let n_bins = (2.0 * Y_HALF / Y_BIN) as usize;
    let mut hists = vec![vec![0.0f64; n_bins]; BANDS];
    let mut gated_samples: Vec<(usize, f64, f64)> = Vec::new(); // band, y, z
    let mut gated = 0u32;
    for &(band, gy, s) in &samples {
        let cnt = band_cnt[band].max(1) as f64;
        let mean = band_sum[band] / cnt;
        let std = ((band_sum2[band] / cnt - mean * mean).max(0.0)).sqrt().max(1e-5);
        let z = (s - mean) / std;
        if z > 2.0 {
            gated += 1;
            let bin = (((gy + Y_HALF) / Y_BIN) as usize).min(n_bins - 1);
            hists[band][bin] += z;
            gated_samples.push((band, gy, z));
        }
    }

    // Per-band cluster extraction: up to two histogram peaks separated by
    // at least MIN_CLUSTER_SEP, refined by local moments.
    let refine = |band: usize, peak_y: f64| -> Cluster {
        let mut mass = 0.0;
        let mut my = 0.0;
        let mut my2 = 0.0;
        for &(b, y, z) in &gated_samples {
            if b == band && (y - peak_y).abs() <= CLUSTER_WIN {
                mass += z;
                my += z * y;
                my2 += z * y * y;
            }
        }
        let centroid = if mass > 1e-9 { my / mass } else { peak_y };
        let spread =
            if mass > 1e-9 { (my2 / mass - centroid * centroid).max(0.0).sqrt() } else { 0.0 };
        Cluster { mass: mass / band_cnt[band].max(1) as f64, centroid, spread }
    };
    let mut clusters: Vec<Vec<Cluster>> = Vec::with_capacity(BANDS);
    for band in 0..BANDS {
        let hist = &hists[band];
        let mut found = Vec::new();
        let peak1 = hist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, &v)| (i, v));
        if let Some((i1, v1)) = peak1 {
            if v1 > 1.0 {
                let y1 = -Y_HALF + (i1 as f64 + 0.5) * Y_BIN;
                found.push(refine(band, y1));
                // Second peak, excluding the neighborhood of the first.
                let sep_bins = (MIN_CLUSTER_SEP / Y_BIN) as usize;
                let peak2 = hist
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i.abs_diff(i1) >= sep_bins)
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, &v)| (i, v));
                if let Some((i2, v2)) = peak2 {
                    if v2 > 1.0 {
                        let y2 = -Y_HALF + (i2 as f64 + 0.5) * Y_BIN;
                        found.push(refine(band, y2));
                    }
                }
            }
        }
        clusters.push(found);
    }

    // Validate two-cluster bands: the pair must be about one lane width
    // apart, otherwise one "cluster" is noise — keep only the stronger.
    for cl in &mut clusters {
        if cl.len() == 2 {
            let sep = (cl[0].centroid - cl[1].centroid).abs();
            if (sep - lkas_scene::track::LANE_WIDTH).abs() > 1.2 {
                let keep = if cl[0].mass >= cl[1].mass { cl[0] } else { cl[1] };
                cl.clear();
                cl.push(keep);
            }
        }
    }

    // Lane-center track from validated two-cluster bands.
    let band_x = |band: usize| X_NEAR + (band as f64 + 0.5) * BAND_LEN;
    let mut xs: Vec<f64> = Vec::new();
    let mut cs: Vec<f64> = Vec::new();
    for (band, cl) in clusters.iter().enumerate() {
        if cl.len() == 2 {
            xs.push(band_x(band));
            cs.push((cl[0].centroid + cl[1].centroid) / 2.0);
        }
    }
    let fit_track = |xs: &[f64], cs: &[f64]| -> (f64, f64, f64) {
        let span = if xs.is_empty() {
            0.0
        } else {
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - xs.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        // A quadratic needs longitudinal leverage; with a short span the
        // curvature term just amplifies noise.
        if xs.len() >= 4 && span >= 12.0 {
            match polyfit(xs, cs, 2) {
                Ok(c) => (c[0], c[1], c[2]),
                Err(_) => (0.0, 0.0, 0.0),
            }
        } else if xs.len() >= 2 {
            match polyfit(xs, cs, 1) {
                Ok(c) => (c[0], c[1], 0.0),
                Err(_) => (0.0, 0.0, 0.0),
            }
        } else {
            (0.0, 0.0, 0.0)
        }
    };
    let (mut c0, mut c1, mut c2) = fit_track(&xs, &cs);
    // Robust refit: drop bands whose center deviates > 0.5 m from the
    // first fit (dash-phase and noise outliers).
    if xs.len() >= 4 {
        let keep: Vec<usize> = (0..xs.len())
            .filter(|&i| (cs[i] - (c0 + c1 * xs[i] + c2 * xs[i] * xs[i])).abs() < 0.5)
            .collect();
        if keep.len() >= 3 && keep.len() < xs.len() {
            let xs2: Vec<f64> = keep.iter().map(|&i| xs[i]).collect();
            let cs2: Vec<f64> = keep.iter().map(|&i| cs[i]).collect();
            let refit = fit_track(&xs2, &cs2);
            c0 = refit.0;
            c1 = refit.1;
            c2 = refit.2;
        }
    }
    let center_at = |x: f64| c0 + c1 * x + c2 * x * x;
    let have_center = xs.len() >= 2;

    // Assign clusters to the left/right marking per band.
    let mut mass_l = vec![0.0f64; BANDS];
    let mut mass_r = vec![0.0f64; BANDS];
    let mut spread_l = (0.0f64, 0.0f64); // (weighted sum, mass)
    let mut spread_r = (0.0f64, 0.0f64);
    for (band, cl) in clusters.iter().enumerate() {
        match cl.len() {
            2 => {
                let (a, b) = (&cl[0], &cl[1]);
                let (l, r) = if a.centroid >= b.centroid { (a, b) } else { (b, a) };
                mass_l[band] = l.mass;
                mass_r[band] = r.mass;
                spread_l.0 += l.spread * l.mass;
                spread_l.1 += l.mass;
                spread_r.0 += r.spread * r.mass;
                spread_r.1 += r.mass;
            }
            1 if have_center => {
                let c = &cl[0];
                if c.centroid >= center_at(band_x(band)) {
                    mass_l[band] = c.mass;
                    spread_l.0 += c.spread * c.mass;
                    spread_l.1 += c.mass;
                } else {
                    mass_r[band] = c.mass;
                    spread_r.0 += c.spread * c.mass;
                    spread_r.1 += c.mass;
                }
            }
            _ => {}
        }
    }

    let total_px: u32 = band_cnt.iter().sum();
    let sum_l: f64 = mass_l.iter().sum();
    let sum_r: f64 = mass_r.iter().sum();
    let ratio = sum_l / (sum_l + sum_r + 1e-9);
    let cv = |masses: &[f64]| -> f64 {
        let m = masses.iter().sum::<f64>() / masses.len() as f64;
        if m <= 1e-9 {
            return 0.0;
        }
        let var = masses.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / masses.len() as f64;
        var.sqrt() / m
    };
    let wavg = |(sum, mass): (f64, f64)| if mass > 1e-9 { sum / mass } else { 0.0 };

    // Clamped so residual outlier fits cannot dominate the normalized
    // feature distribution.
    [
        (c0.clamp(-4.0, 4.0)) as f32,
        (c1 * 10.0).clamp(-5.0, 5.0) as f32,
        (c2 * 200.0).clamp(-3.0, 3.0) as f32,
        (sum_l * 20.0) as f32,
        (sum_r * 20.0) as f32,
        ratio as f32,
        (wavg(spread_l) * 5.0) as f32,
        (wavg(spread_r) * 5.0) as f32,
        cv(&mass_l) as f32,
        cv(&mass_r) as f32,
        (gated as f64 / total_px.max(1) as f64 * 20.0) as f32,
    ]
}

/// Marking-likelihood score of one pixel (luma or boosted yellowness).
#[inline]
fn score_of(p: [f32; 3]) -> f32 {
    let luma = 0.299 * p[0] + 0.587 * p[1] + 0.114 * p[2];
    let yell = ((p[0] + p[1]) / 2.0 - p[2]).max(0.0);
    luma.max(1.6 * yell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkas_imaging::isp::{IspConfig, IspPipeline};
    use lkas_imaging::sensor::{Sensor, SensorConfig};
    use lkas_scene::render::SceneRenderer;
    use lkas_scene::situation::TABLE3_SITUATIONS;
    use lkas_scene::track::Track;

    const GEOM_BASE: usize = GRID_W * GRID_H + 6 + HIST_BINS;

    fn features_for_situation(idx: usize, seed: u64) -> Vec<f32> {
        features_at(idx, 60.0, 0.0, seed)
    }

    fn features_at(idx: usize, s: f64, d: f64, seed: u64) -> Vec<f32> {
        let cam = Camera::default_automotive();
        let track = Track::for_situation(&TABLE3_SITUATIONS[idx], 1000.0);
        let frame = SceneRenderer::new(cam.clone()).render(&track, s, d, 0.0);
        let raw = Sensor::new(SensorConfig::default(), seed).capture(&frame, 1.0);
        let rgb = IspPipeline::new(IspConfig::S0).process(&raw);
        extract(&rgb, &cam)
    }

    #[test]
    fn dimension_is_stable() {
        let f = features_for_situation(0, 1);
        assert_eq!(f.len(), FEATURE_DIM);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn day_and_dark_differ_in_histogram() {
        let day = features_for_situation(0, 1);
        let dark = features_for_situation(6, 1);
        let base = GRID_W * GRID_H + 6;
        let day_low: f32 = day[base..base + 2].iter().sum();
        let dark_low: f32 = dark[base..base + 2].iter().sum();
        assert!(dark_low > day_low, "dark scenes concentrate in low bins");
    }

    #[test]
    fn yellow_lane_raises_chroma_ratio() {
        let white = features_for_situation(0, 2);
        let yellow = features_for_situation(2, 2);
        let idx = GRID_W * GRID_H + 5; // normalized yellowness ratio
        assert!(yellow[idx] > white[idx]);
    }

    #[test]
    fn yellow_ratio_survives_night() {
        let white_night = features_for_situation(4, 3);
        let yellow_night = features_for_situation(5, 3);
        let idx = GRID_W * GRID_H + 5;
        assert!(yellow_night[idx] > white_night[idx]);
    }

    #[test]
    fn curvature_feature_orders_layouts() {
        // c2 (index GEOM_BASE + 2) is the quadratic lane-center
        // coefficient: positive for left turns, negative for right.
        let right = features_for_situation(7, 3);
        let left = features_for_situation(14, 3);
        let straight = features_for_situation(0, 3);
        let c2 = |f: &[f32]| f[GEOM_BASE + 2];
        assert!(
            c2(&left) > c2(&straight) + 0.1
                && c2(&straight) > c2(&right) - 0.1
                && c2(&left) > c2(&right) + 0.3,
            "c2 ordering: left {} straight {} right {}",
            c2(&left),
            c2(&straight),
            c2(&right)
        );
    }

    #[test]
    fn curvature_feature_tolerates_lateral_pose() {
        let centered = features_at(7, 60.0, 0.0, 9)[GEOM_BASE + 2];
        let offset = features_at(7, 60.0, 0.4, 9)[GEOM_BASE + 2];
        assert!(
            (centered - offset).abs() < 0.5 * centered.abs().max(0.2),
            "c2 {centered} vs {offset} should be pose-tolerant"
        );
    }

    #[test]
    fn dotted_left_lane_raises_left_cv() {
        let cont = features_for_situation(0, 4);
        let dotted = features_for_situation(1, 4);
        let cv_l = |f: &[f32]| f[GEOM_BASE + 8];
        assert!(
            cv_l(&dotted) > cv_l(&cont),
            "dotted CV {} must exceed continuous {}",
            cv_l(&dotted),
            cv_l(&cont)
        );
    }

    #[test]
    fn double_lane_raises_left_spread() {
        let single = features_for_situation(2, 5); // yellow continuous
        let double = features_for_situation(3, 5); // yellow double
        let spread_l = |f: &[f32]| f[GEOM_BASE + 6];
        assert!(
            spread_l(&double) > spread_l(&single),
            "double spread {} vs single {}",
            spread_l(&double),
            spread_l(&single)
        );
    }
}
