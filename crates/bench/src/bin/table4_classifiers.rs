//! Table IV — the three situation classifiers.
//!
//! Trains the road / lane / scene classifiers on renderer-generated
//! datasets at the paper's dataset scale (5866 / 4781 / 4703 images)
//! and reports dataset sizes, validation accuracy and the modeled
//! Xavier runtime. `--quick` trains at a reduced scale.
//!
//! The trained bundle is cached at `artifacts/classifiers.json` for the
//! Fig. 6 / Fig. 8 harnesses.
//!
//! Usage: `cargo run --release -p lkas-bench --bin table4_classifiers [--quick]`

use lkas_bench::{
    default_threads, render_table, train_bundle, write_result, Executor, ARTIFACTS_DIR,
    TABLE4_SCALES,
};
use lkas_nn::classifiers::ClassifierSpec;
use lkas_nn::TrainReport;
use lkas_platform::profiles::CLASSIFIER_RUNTIME_MS;
use serde::Serialize;

#[derive(Serialize)]
struct ClassifierRow {
    classifier: String,
    classes: usize,
    train: usize,
    val: usize,
    val_accuracy_pct: f64,
    paper_accuracy_pct: f64,
    xavier_runtime_ms: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // The three classifiers have different class counts; train each at
    // its own Table IV scale unless --quick.
    let names = ["Road", "Lane", "Scene"];
    let classes = [3usize, 4, 5];
    let paper_acc = [99.92, 99.97, 99.90];

    let mut reports: Vec<TrainReport> = Vec::new();
    if quick {
        let spec = lkas_bench::quick_spec();
        let (bundle, r) = train_bundle(&spec, 42);
        cache(&bundle);
        reports.extend(r);
    } else {
        // Per-classifier Table IV scale. Each classifier trains on its
        // own seed, so the three trainings are independent jobs for the
        // shared executor (identical results at any thread count).
        use lkas_nn::classifiers::{LaneClassifier, RoadClassifier, SceneClassifier};
        enum Trained {
            Road(RoadClassifier, TrainReport),
            Lane(LaneClassifier, TrainReport),
            Scene(SceneClassifier, TrainReport),
        }
        let spec_of = |i: usize| {
            let (train, val) = TABLE4_SCALES[i];
            ClassifierSpec { epochs: 80, ..ClassifierSpec::table4(classes[i], train, val) }
        };
        let trained = Executor::new(default_threads().min(3)).run(vec![0usize, 1, 2], |i| {
            eprintln!("[training] {} classifier at Table IV scale…", names[i].to_lowercase());
            match i {
                0 => {
                    let (c, r) = RoadClassifier::train(&spec_of(0), 42);
                    Trained::Road(c, r)
                }
                1 => {
                    let (c, r) = LaneClassifier::train(&spec_of(1), 43);
                    Trained::Lane(c, r)
                }
                _ => {
                    let (c, r) = SceneClassifier::train(&spec_of(2), 44);
                    Trained::Scene(c, r)
                }
            }
        });
        let mut bundle_parts = (None, None, None);
        for t in trained {
            match t {
                Trained::Road(c, r) => bundle_parts.0 = Some((c, r)),
                Trained::Lane(c, r) => bundle_parts.1 = Some((c, r)),
                Trained::Scene(c, r) => bundle_parts.2 = Some((c, r)),
            }
        }
        let (road, r0) = bundle_parts.0.expect("road trained");
        let (lane, r1) = bundle_parts.1.expect("lane trained");
        let (scene, r2) = bundle_parts.2.expect("scene trained");
        cache(&lkas::identify::ClassifierBundle { road, lane, scene });
        reports.extend([r0, r1, r2]);
    }

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for i in 0..3 {
        let r = &reports[i];
        rows.push(vec![
            names[i].to_string(),
            classes[i].to_string(),
            r.train_size.to_string(),
            r.val_size.to_string(),
            format!("{:.2}", r.val_accuracy * 100.0),
            format!("{:.2}", paper_acc[i]),
            format!("{CLASSIFIER_RUNTIME_MS}"),
        ]);
        json_rows.push(ClassifierRow {
            classifier: names[i].to_string(),
            classes: classes[i],
            train: r.train_size,
            val: r.val_size,
            val_accuracy_pct: r.val_accuracy * 100.0,
            paper_accuracy_pct: paper_acc[i],
            xavier_runtime_ms: CLASSIFIER_RUNTIME_MS,
        });
    }
    println!("Table IV — situation classifiers (feature-MLP substitute for ResNet-18/TensorRT)");
    println!(
        "{}",
        render_table(
            &["classifier", "classes", "train", "val", "val acc %", "paper acc %", "Xavier ms"],
            &rows
        )
    );
    write_result("table4_classifiers", &json_rows);
}

fn cache(bundle: &lkas::identify::ClassifierBundle) {
    std::fs::create_dir_all(ARTIFACTS_DIR).expect("create artifacts dir");
    let path = std::path::Path::new(ARTIFACTS_DIR).join("classifiers.json");
    std::fs::write(&path, bundle.to_json().expect("serialize bundle")).expect("write bundle");
    eprintln!("[cached] {}", path.display());
}
