//! Acceptance tests for the robustness campaign: the report must be a
//! pure function of `(seed, quick)` — in particular, byte-identical
//! across Executor thread counts.

use lkas_bench::robustness::{report_json, run_campaign, CampaignConfig, ROBUSTNESS_SCHEMA};

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let base = CampaignConfig { seed: 7, threads: 1, quick: true };
    let sequential = run_campaign(&base, None);
    let parallel = run_campaign(&CampaignConfig { threads: 4, ..base }, None);
    let a = report_json(&sequential);
    let b = report_json(&parallel);
    assert_eq!(a.as_bytes(), b.as_bytes(), "threads=1 and threads=4 must emit identical reports");

    assert!(a.contains(ROBUSTNESS_SCHEMA));
    assert_eq!(sequential.summary.runs_per_arm, 4, "quick grid: 1 case × 4 plans");
    // The nominal plan must not crash in either arm.
    for e in sequential.entries.iter().filter(|e| e.plan == "nominal") {
        assert!(!e.crashed, "fault-free baseline must survive (policy={})", e.policy);
        assert_eq!(e.faulted_cycles, 0);
        assert_eq!(e.frame_drops, 0);
    }
    // Faulted plans actually injected something.
    for e in sequential.entries.iter().filter(|e| e.plan != "nominal") {
        assert!(e.faulted_cycles > 0, "plan {} must inject faults", e.plan);
    }
}
