//! Acceptance tests for the observability layer: trace determinism
//! across executor thread counts, per-worker telemetry merge
//! equivalence, and the `telemetry_report` diff gate's exit codes.

use lkas::cases::Case;
use lkas_bench::{run_hil_jobs, HilJob, Metrics, TraceRecorder};
use lkas_scene::camera::Camera;
use lkas_scene::situation::TABLE3_SITUATIONS;
use lkas_scene::track::Track;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

fn test_camera() -> Camera {
    Camera::new(256, 128, 150.0, 1.3, 6.0_f64.to_radians())
}

/// A small 3-job sweep with per-run trace sinks; returns the exported
/// Chrome trace JSON.
fn traced_sweep(threads: usize) -> String {
    let recorder = TraceRecorder::new();
    let jobs: Vec<HilJob> = (0..3u64)
        .map(|i| {
            let track = Track::for_situation(&TABLE3_SITUATIONS[i as usize * 7 % 21], 80.0);
            let mut job = HilJob::new(format!("job-{i}"), Case::Case3, track, None, 42 + i)
                .with_trace_sink(recorder.sink(i, format!("job-{i}")));
            job.config.camera = test_camera();
            job.config.max_time_s = 3.0;
            job
        })
        .collect();
    let results = run_hil_jobs(jobs, threads);
    assert_eq!(results.len(), 3);
    recorder.chrome_trace_json()
}

#[test]
fn trace_export_is_byte_identical_across_thread_counts() {
    let sequential = traced_sweep(1);
    let parallel = traced_sweep(4);
    assert_eq!(
        sequential.as_bytes(),
        parallel.as_bytes(),
        "virtual timestamps must make the trace thread-count independent"
    );
    // The export is a loadable Chrome trace document with stage spans.
    assert!(sequential.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(sequential.contains("\"ph\":\"X\""));
    assert!(sequential.contains("\"name\":\"process_name\""));
    assert!(sequential.contains("\"name\":\"actuation\""));
}

#[test]
fn per_worker_metrics_merge_equals_sequential_recording() {
    let sweep = |threads: usize| {
        let metrics = Arc::new(Metrics::new());
        let jobs: Vec<HilJob> = (0..4u64)
            .map(|i| {
                let track = Track::for_situation(&TABLE3_SITUATIONS[0], 80.0);
                let mut job = HilJob::new(format!("m-{i}"), Case::Case3, track, None, 7 + i)
                    .with_metrics(&metrics);
                job.config.camera = test_camera();
                job.config.max_time_s = 3.0;
                job
            })
            .collect();
        run_hil_jobs(jobs, threads);
        metrics.snapshot()
    };
    let seq = sweep(1);
    let par = sweep(4);
    // Wall-clock histograms differ run to run, but the deterministic
    // shape must match: same schema, same counters, same stage counts.
    assert_eq!(seq.schema, par.schema);
    for (name, value) in &seq.counters {
        if name.starts_with("controller_cache") {
            continue; // split races benignly; compared as a sum below
        }
        assert_eq!(par.counter(name), Some(*value), "counter {name}");
    }
    let cache_sum = |s: &lkas_bench::MetricsSnapshot| {
        s.counter("controller_cache_hits").unwrap() + s.counter("controller_cache_misses").unwrap()
    };
    assert_eq!(cache_sum(&seq), cache_sum(&par));
    for stage in &seq.stages {
        let other = par.stage(&stage.stage).expect("stage present");
        assert_eq!(other.count, stage.count, "stage {} count", stage.stage);
    }
}

fn report_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_telemetry_report"))
}

fn write_snapshot(dir: &std::path::Path, name: &str, perception_us: u64) -> PathBuf {
    use lkas_runtime::{Counter, Stage};
    use std::time::Duration;
    let m = Metrics::new();
    for _ in 0..20 {
        m.record(Stage::Perception, Duration::from_micros(perception_us));
        m.incr(Counter::Cycles);
    }
    let path = dir.join(name);
    m.write_json(&path).unwrap();
    path
}

#[test]
fn telemetry_report_diff_exit_codes() {
    let dir = std::env::temp_dir().join(format!("lkas-telemetry-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = write_snapshot(&dir, "base.json", 100);
    let slow = write_snapshot(&dir, "slow.json", 4000);

    // Identical snapshots pass (exit 0).
    let ok = report_bin().args(["diff"]).arg(&base).arg(&base).output().unwrap();
    assert!(ok.status.success(), "identical snapshots must pass: {ok:?}");
    assert!(String::from_utf8_lossy(&ok.stdout).contains("PASS"));

    // An inflated stage time fails (exit 1).
    let bad = report_bin().args(["diff"]).arg(&base).arg(&slow).output().unwrap();
    assert_eq!(bad.status.code(), Some(1), "inflated stage time must fail");
    assert!(String::from_utf8_lossy(&bad.stdout).contains("FAIL"));

    // ...unless the thresholds are loosened enough.
    let loose = report_bin()
        .args(["diff", "--max-rel-mean", "1000", "--max-rel-tail", "1000"])
        .arg(&base)
        .arg(&slow)
        .output()
        .unwrap();
    assert!(loose.status.success(), "{loose:?}");

    // `show` renders the latency table.
    let show = report_bin().arg("show").arg(&base).output().unwrap();
    assert!(show.status.success());
    let text = String::from_utf8_lossy(&show.stdout);
    assert!(text.contains("perception") && text.contains("p99_us"), "{text}");

    // Usage errors exit 2.
    let usage = report_bin().arg("diff").arg(&base).output().unwrap();
    assert_eq!(usage.status.code(), Some(2));
    let missing = report_bin().args(["show", "nonexistent.json"]).output().unwrap();
    assert_eq!(missing.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_report_failure_modes_are_distinct() {
    use lkas_runtime::{Counter, Stage};
    use std::time::Duration;

    let dir = std::env::temp_dir().join(format!("lkas-telemetry-fail-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let good = write_snapshot(&dir, "good.json", 100);

    // A missing baseline file exits 2 and says it cannot read it.
    let absent = dir.join("no-such-baseline.json");
    let out = report_bin().arg("diff").arg(&absent).arg(&good).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing baseline: {out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read") && err.contains("no-such-baseline.json"), "{err}");

    // A malformed candidate exits 2 with a parse (not read) message.
    let malformed = dir.join("malformed.json");
    std::fs::write(&malformed, "{ this is not json").unwrap();
    let out = report_bin().arg("diff").arg(&good).arg(&malformed).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "malformed candidate: {out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot parse") && err.contains("malformed.json"), "{err}");
    assert!(!err.contains("cannot read"), "parse failure must not read as an I/O failure: {err}");

    // A drifted deterministic counter exits 1 and names the counter
    // with both values.
    let drifted = dir.join("drifted.json");
    let m = Metrics::new();
    for _ in 0..20 {
        m.record(Stage::Perception, Duration::from_micros(100));
        m.incr(Counter::Cycles);
    }
    m.incr(Counter::Cycles); // one extra cycle
    m.write_json(&drifted).unwrap();
    let out = report_bin()
        .args(["diff", "--max-rel-mean", "1000", "--max-rel-tail", "1000"])
        .arg(&good)
        .arg(&drifted)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "counter drift: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("counter cycles: 20 -> 21"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}
