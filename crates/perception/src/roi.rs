//! The five regions of interest (Table II, "PR knobs").
//!
//! The paper specifies each ROI as a pixel trapezoid in the 512×256
//! frame. Because this reproduction's camera geometry is not bit-exact
//! with the Webots camera, the ROIs here are defined as *ground-plane
//! rectangles* (forward × lateral extents) carrying the same intent:
//!
//! * **ROI 1** — centered, long preview: straight roads;
//! * **ROI 2** — shifted right, long preview: right turns (coarse);
//! * **ROI 3** — shifted right, short preview: right turns with dotted
//!   lanes (fine-grained — a shorter, denser view keeps sparse dashes in
//!   sight);
//! * **ROI 4** — shifted left, long preview: left turns (coarse);
//! * **ROI 5** — shifted left, short preview: left turns with dotted
//!   lanes (fine-grained).
//!
//! The pixel trapezoid of each ROI for a given camera is recoverable via
//! [`Roi::pixel_corners`], which is what a Table II-style listing
//! contains.

use lkas_scene::camera::Camera;
use serde::{Deserialize, Serialize};

/// A ground-plane region of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are the paper's opaque ROI IDs
pub enum Roi {
    Roi1,
    Roi2,
    Roi3,
    Roi4,
    Roi5,
}

/// Ground extent of an ROI: forward range `[x_near, x_far]` and lateral
/// range `[y_right, y_left]` in vehicle-frame meters (left positive).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundExtent {
    /// Near edge of the preview window (m ahead of the vehicle).
    pub x_near: f64,
    /// Far edge of the preview window (m ahead of the vehicle).
    pub x_far: f64,
    /// Right edge (m, negative = right of the vehicle).
    pub y_right: f64,
    /// Left edge (m, positive = left of the vehicle).
    pub y_left: f64,
}

impl Roi {
    /// All five ROIs in Table II order.
    pub const ALL: [Roi; 5] = [Roi::Roi1, Roi::Roi2, Roi::Roi3, Roi::Roi4, Roi::Roi5];

    /// The paper's name for this ROI (`"ROI 1"` … `"ROI 5"`).
    pub fn name(self) -> &'static str {
        match self {
            Roi::Roi1 => "ROI 1",
            Roi::Roi2 => "ROI 2",
            Roi::Roi3 => "ROI 3",
            Roi::Roi4 => "ROI 4",
            Roi::Roi5 => "ROI 5",
        }
    }

    /// Ground-plane extent of this ROI.
    ///
    /// Like the paper's pixel trapezoids, the ROIs are deliberately
    /// *tight*: a wide warp would dilute the marking evidence (and cost
    /// runtime on the real pipeline), so each ROI covers little more
    /// than the lane it expects. That tightness is exactly why a fixed
    /// ROI 1 loses the lanes on curves (Sec. IV-C) — the evidence
    /// leaves the rectified window and the detector reports a failure.
    pub fn ground_extent(self) -> GroundExtent {
        match self {
            // Centered preview window: straights.
            Roi::Roi1 => GroundExtent { x_near: 7.0, x_far: 30.0, y_right: -2.6, y_left: 2.6 },
            // Right turns: lanes drift right quadratically with
            // distance.
            Roi::Roi2 => GroundExtent { x_near: 7.0, x_far: 26.0, y_right: -5.4, y_left: 2.0 },
            // Right turns + dotted lanes: shorter, nearer, denser.
            Roi::Roi3 => GroundExtent { x_near: 5.0, x_far: 20.0, y_right: -4.2, y_left: 2.4 },
            // Left turns.
            Roi::Roi4 => GroundExtent { x_near: 7.0, x_far: 26.0, y_right: -2.0, y_left: 5.4 },
            // Left turns + dotted lanes.
            Roi::Roi5 => GroundExtent { x_near: 5.0, x_far: 20.0, y_right: -2.4, y_left: 4.2 },
        }
    }

    /// The image-space trapezoid corners of this ROI for a camera, in
    /// the order (far-left, far-right, near-left, near-right) — the
    /// Table II presentation.
    ///
    /// Corners may fall outside the frame for wide ROIs; the bird's-eye
    /// sampler clamps reads, matching how a warp handles border pixels.
    pub fn pixel_corners(self, camera: &Camera) -> [(f64, f64); 4] {
        let g = self.ground_extent();
        let p = |x: f64, y: f64| camera.project_ground(x, y).unwrap_or((f64::NAN, f64::NAN));
        [p(g.x_far, g.y_left), p(g.x_far, g.y_right), p(g.x_near, g.y_left), p(g.x_near, g.y_right)]
    }
}

impl std::fmt::Display for Roi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_rois() {
        assert_eq!(Roi::ALL.len(), 5);
        assert_eq!(Roi::Roi3.name(), "ROI 3");
    }

    #[test]
    fn extents_are_well_formed() {
        for roi in Roi::ALL {
            let g = roi.ground_extent();
            assert!(g.x_near > 0.0 && g.x_far > g.x_near);
            assert!(g.y_left > g.y_right);
        }
    }

    #[test]
    fn roi1_is_centered() {
        let g = Roi::Roi1.ground_extent();
        assert!((g.y_left + g.y_right).abs() < 1e-9);
    }

    #[test]
    fn turn_rois_are_shifted() {
        let r2 = Roi::Roi2.ground_extent();
        let r4 = Roi::Roi4.ground_extent();
        assert!(r2.y_right < Roi::Roi1.ground_extent().y_right, "ROI 2 extends right");
        assert!(r4.y_left > Roi::Roi1.ground_extent().y_left, "ROI 4 extends left");
    }

    #[test]
    fn fine_rois_have_shorter_preview() {
        assert!(Roi::Roi3.ground_extent().x_far < Roi::Roi2.ground_extent().x_far);
        assert!(Roi::Roi5.ground_extent().x_far < Roi::Roi4.ground_extent().x_far);
    }

    #[test]
    fn pixel_corners_form_a_trapezoid() {
        let cam = Camera::default_automotive();
        let c = Roi::Roi1.pixel_corners(&cam);
        // Far edge is higher in the image (smaller v) than the near edge.
        assert!(c[0].1 < c[2].1);
        // Far edge is narrower than the near edge (perspective).
        let far_w = (c[1].0 - c[0].0).abs();
        let near_w = (c[3].0 - c[2].0).abs();
        assert!(far_w < near_w);
    }

    #[test]
    fn look_ahead_below_every_roi() {
        // The preview windows start beyond the 5.5 m look-ahead; y_L is
        // obtained by evaluating the fitted polynomial at the look-ahead
        // row (extrapolation toward the bumper), as in the classical
        // pipelines the paper builds on.
        for roi in Roi::ALL {
            let g = roi.ground_extent();
            assert!(g.x_near >= crate::LOOK_AHEAD * 0.9, "{roi} starts near the bumper");
            assert!(g.x_far > g.x_near + 10.0, "{roi} must give a usable preview");
        }
    }
}
