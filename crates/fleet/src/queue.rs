//! A bounded priority job queue with admission control.
//!
//! The queue is the daemon's single scheduling point: submissions are
//! admitted (or refused with a reason) under a capacity bound, workers
//! block on [`JobQueue::pop`] and always receive the highest-priority
//! pending job, and ties run in submission order so equal-priority
//! work is FIFO-fair. Everything is a `Mutex` + `Condvar` — no
//! lock-free cleverness is warranted at job granularity (jobs are
//! whole simulations; the queue is touched a handful of times per
//! second at most).

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The queue already holds `capacity` pending jobs.
    Saturated {
        /// Jobs pending at refusal time.
        queued: usize,
        /// The admission bound.
        capacity: usize,
    },
    /// The queue was closed (daemon shutting down).
    Closed,
}

impl Admission {
    /// Human-readable refusal reason for the wire.
    pub fn reason(&self) -> String {
        match self {
            Admission::Saturated { queued, capacity } => {
                format!("queue saturated: {queued} of {capacity} slots pending")
            }
            Admission::Closed => "daemon is shutting down".to_string(),
        }
    }
}

struct Entry<T> {
    priority: u8,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier submission
        // (lower seq) first.
        self.priority.cmp(&other.priority).then(other.seq.cmp(&self.seq))
    }
}

struct State<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    closed: bool,
}

/// A bounded, closable max-priority queue. See the module docs.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// An open queue admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(State { heap: BinaryHeap::new(), next_seq: 0, closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently pending (admitted, not yet popped).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").heap.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item` at `priority`, or refuses it.
    ///
    /// # Errors
    ///
    /// [`Admission::Saturated`] when `capacity` jobs are already
    /// pending, [`Admission::Closed`] after [`JobQueue::close`].
    pub fn push(&self, priority: u8, item: T) -> Result<(), Admission> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(Admission::Closed);
        }
        if state.heap.len() >= self.capacity {
            return Err(Admission::Saturated { queued: state.heap.len(), capacity: self.capacity });
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(Entry { priority, seq, item });
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available and returns the
    /// highest-priority one (ties: earliest submitted). Returns `None`
    /// once the queue is closed *and* drained — the worker-pool exit
    /// signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(entry) = state.heap.pop() {
                return Some(entry.item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }

    /// Removes and returns every pending job matching `pred` (used to
    /// cancel queued work; running jobs are out of the queue's reach).
    pub fn remove_if(&self, pred: impl Fn(&T) -> bool) -> Vec<T> {
        let mut state = self.state.lock().expect("queue lock");
        let entries = std::mem::take(&mut state.heap).into_vec();
        let mut removed = Vec::new();
        for entry in entries {
            if pred(&entry.item) {
                removed.push(entry.item);
            } else {
                state.heap.push(entry);
            }
        }
        removed
    }

    /// Closes the queue: future pushes fail with [`Admission::Closed`],
    /// and blocked/future pops drain the remaining jobs then return
    /// `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pops_by_priority_then_submission_order() {
        let queue = JobQueue::new(16);
        queue.push(1, "low-a").unwrap();
        queue.push(5, "high-a").unwrap();
        queue.push(3, "mid").unwrap();
        queue.push(5, "high-b").unwrap();
        queue.push(1, "low-b").unwrap();
        let order: Vec<_> = (0..5).map(|_| queue.pop().unwrap()).collect();
        assert_eq!(order, ["high-a", "high-b", "mid", "low-a", "low-b"]);
    }

    #[test]
    fn saturation_refuses_with_counts() {
        let queue = JobQueue::new(2);
        queue.push(0, 1).unwrap();
        queue.push(0, 2).unwrap();
        assert_eq!(queue.push(0, 3), Err(Admission::Saturated { queued: 2, capacity: 2 }));
        // Popping frees a slot.
        assert_eq!(queue.pop(), Some(1));
        queue.push(0, 3).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let queue = JobQueue::new(4);
        queue.push(2, "x").unwrap();
        queue.close();
        assert_eq!(queue.push(9, "y"), Err(Admission::Closed));
        assert_eq!(queue.pop(), Some("x"));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let queue = Arc::new(JobQueue::<u32>::new(4));
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        // Give the waiter a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn remove_if_cancels_pending() {
        let queue = JobQueue::new(8);
        for id in 0..4u32 {
            queue.push(0, id).unwrap();
        }
        let mut removed = queue.remove_if(|&id| id % 2 == 1);
        removed.sort_unstable();
        assert_eq!(removed, [1, 3]);
        queue.close();
        let mut left = Vec::new();
        while let Some(id) = queue.pop() {
            left.push(id);
        }
        assert_eq!(left, [0, 2]);
    }
}
